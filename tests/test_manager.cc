// Unit tests for the central manager: registry freshness and the global
// (manager-side) selection step — proximity filter with widening, scoring,
// TopN truncation.
#include "manager/central_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string_view>
#include <vector>

#include "geo/geohash.h"
#include "sim/simulator.h"
#include "sim/clock.h"

namespace eden::manager {
namespace {

net::NodeStatus make_status(std::uint32_t id, std::string geohash,
                            int cores = 4, double frame_ms = 30.0,
                            double utilization = 0.0, int users = 0) {
  net::NodeStatus status;
  status.node = NodeId{id};
  status.geohash = std::move(geohash);
  status.cores = cores;
  status.base_frame_ms = frame_ms;
  status.utilization = utilization;
  status.attached_users = users;
  return status;
}

TEST(Registry, UpsertAndGet) {
  Registry registry(sec(3.0));
  registry.upsert(make_status(1, "9zvxvf"), msec(100));
  const auto entry = registry.get(NodeId{1});
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status.geohash, "9zvxvf");
  EXPECT_EQ(entry->last_heartbeat, msec(100));
  EXPECT_EQ(entry->registered_at, msec(100));
}

TEST(Registry, UpsertKeepsRegistrationTime) {
  Registry registry(sec(3.0));
  registry.upsert(make_status(1, "9zvxvf"), msec(100));
  registry.upsert(make_status(1, "9zvxvf"), msec(500));
  const auto entry = registry.get(NodeId{1});
  EXPECT_EQ(entry->registered_at, msec(100));
  EXPECT_EQ(entry->last_heartbeat, msec(500));
}

TEST(Registry, ExpireDropsStaleNodes) {
  Registry registry(sec(3.0));
  registry.upsert(make_status(1, "a"), 0);
  registry.upsert(make_status(2, "b"), sec(2));
  registry.expire(sec(4));  // node 1 is 4s stale (> 3s TTL), node 2 only 2s
  EXPECT_FALSE(registry.get(NodeId{1}).has_value());
  EXPECT_TRUE(registry.get(NodeId{2}).has_value());
}

TEST(Registry, ForEachLiveExpiresFirst) {
  Registry registry(sec(1.0));
  registry.upsert(make_status(1, "a"), 0);
  std::size_t visited = 0;
  registry.for_each_live(
      "", sec(5),
      [&visited](const RegistryEntry&, const std::optional<geo::GeoPoint>&) {
        ++visited;
      });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(registry.size(), 0u);  // expiry ran before visitation
}

TEST(Registry, RemoveIsImmediate) {
  Registry registry;
  registry.upsert(make_status(1, "a"), 0);
  registry.remove(NodeId{1});
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, ExpireExactTtlBoundary) {
  Registry registry(sec(3.0));
  registry.upsert(make_status(1, "9zvxvf"), 0);
  // Exactly at the TTL the node survives (expiry needs age > ttl)...
  EXPECT_TRUE(registry.expire(sec(3)).empty());
  EXPECT_TRUE(registry.get(NodeId{1}).has_value());
  // ...one microsecond later it is gone.
  EXPECT_EQ(registry.expire(sec(3) + 1), std::vector<NodeId>{NodeId{1}});
  EXPECT_FALSE(registry.get(NodeId{1}).has_value());
}

TEST(Registry, ExpireReturnsSortedIdsUnderInterleaving) {
  // Deadline-queue regression: interleaved upserts, heartbeat refreshes and
  // expiries must return expired ids sorted ascending and drop exactly the
  // stale set, regardless of heap pop order or superseded heap entries.
  Registry registry(sec(3.0));
  for (const std::uint32_t id : {7u, 3u, 11u, 1u, 9u, 5u}) {
    registry.upsert(make_status(id, "9zvxvf"), 0);
  }
  // Refresh 3 and 9 at t=2s; their t=0 heap entries go stale, not the nodes.
  registry.upsert(make_status(3, "9zvxvf"), sec(2));
  registry.upsert(make_status(9, "9zvxvf"), sec(2));
  // Explicitly removed nodes must never come back as "expired".
  registry.remove(NodeId{5});

  const auto first = registry.expire(sec(4));
  EXPECT_EQ(first, (std::vector<NodeId>{NodeId{1}, NodeId{7}, NodeId{11}}));
  EXPECT_EQ(registry.size(), 2u);

  // Nothing left but 3 and 9; they expire exactly once, in order.
  const auto second = registry.expire(sec(6));
  EXPECT_EQ(second, (std::vector<NodeId>{NodeId{3}, NodeId{9}}));
  EXPECT_TRUE(registry.expire(sec(60)).empty());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, GeohashChangeRebuckets) {
  Registry registry(sec(30.0));
  registry.upsert(make_status(1, "9zvxvf"), 0);
  registry.upsert(make_status(1, "dp3wnh"), sec(1));  // node moved metros
  const auto collect = [&](std::string_view prefix) {
    std::vector<std::uint32_t> ids;
    registry.for_each_live(
        prefix, sec(1),
        [&](const RegistryEntry& entry, const std::optional<geo::GeoPoint>&) {
          ids.push_back(entry.status.node.value);
        });
    return ids;
  };
  EXPECT_TRUE(collect("9zvx").empty());
  EXPECT_EQ(collect("dp3w"), std::vector<std::uint32_t>{1u});
}

TEST(Registry, ForEachLiveMatchesTextualPrefix) {
  Registry registry(sec(30.0));
  registry.upsert(make_status(1, "9zvxvf"), 0);
  registry.upsert(make_status(2, "9zvxaa"), 0);  // 'a' invalid: undecodable
  registry.upsert(make_status(3, ""), 0);        // no location at all
  registry.upsert(make_status(4, "9zvyyy"), 0);
  const auto collect = [&](std::string_view prefix) {
    std::vector<std::uint32_t> ids;
    registry.for_each_live(
        prefix, 0,
        [&](const RegistryEntry& entry, const std::optional<geo::GeoPoint>&) {
          ids.push_back(entry.status.node.value);
        });
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(collect(""), (std::vector<std::uint32_t>{1u, 2u, 3u, 4u}));
  EXPECT_EQ(collect("9zv"), (std::vector<std::uint32_t>{1u, 2u, 4u}));
  EXPECT_EQ(collect("9zvx"), (std::vector<std::uint32_t>{1u, 2u}));
  // Longer than the bucket precision: per-entry textual check inside the
  // bucket; the undecodable hash no longer matches.
  EXPECT_EQ(collect("9zvxv"), std::vector<std::uint32_t>{1u});
}

TEST(Registry, VisitorSeesDecodedCenterOnlyForValidHashes) {
  Registry registry(sec(30.0));
  registry.upsert(make_status(1, "9zvxvf"), 0);
  registry.upsert(make_status(2, "not a hash"), 0);
  registry.for_each_live(
      "", 0,
      [&](const RegistryEntry& entry, const std::optional<geo::GeoPoint>& c) {
        EXPECT_EQ(c.has_value(), entry.status.node == NodeId{1});
      });
}

class GlobalSelectionTest : public ::testing::Test {
 protected:
  static net::DiscoveryRequest request(std::string geohash, int top_n = 3,
                                       std::string tag = "") {
    net::DiscoveryRequest req;
    req.client = ClientId{100};
    req.geohash = std::move(geohash);
    req.top_n = top_n;
    req.network_tag = std::move(tag);
    return req;
  }

  static std::vector<RegistryEntry> wrap(std::vector<net::NodeStatus> statuses) {
    std::vector<RegistryEntry> entries;
    for (auto& s : statuses) entries.push_back(RegistryEntry{std::move(s), 0, 0});
    return entries;
  }
};

TEST_F(GlobalSelectionTest, ReturnsAtMostTopN) {
  GlobalSelector selector;
  std::vector<net::NodeStatus> statuses;
  for (std::uint32_t i = 0; i < 10; ++i) {
    statuses.push_back(make_status(i, "9zvxvf"));
  }
  const auto resp = selector.select(request("9zvxvf", 4), wrap(statuses));
  EXPECT_EQ(resp.candidates.size(), 4u);
}

TEST_F(GlobalSelectionTest, FewerNodesThanTopN) {
  GlobalSelector selector;
  const auto resp = selector.select(request("9zvxvf", 5),
                                    wrap({make_status(1, "9zvxvf")}));
  EXPECT_EQ(resp.candidates.size(), 1u);
}

TEST_F(GlobalSelectionTest, EmptySystem) {
  GlobalSelector selector;
  const auto resp = selector.select(request("9zvxvf", 3), {});
  EXPECT_TRUE(resp.candidates.empty());
}

TEST_F(GlobalSelectionTest, PrefersCloserGeohash) {
  GlobalSelector selector;
  // Same capacity; only proximity differs.
  const auto resp = selector.select(
      request("9zvxvf", 2),
      wrap({make_status(1, "9zvx00"), make_status(2, "9zvxvf")}));
  ASSERT_EQ(resp.candidates.size(), 2u);
  EXPECT_EQ(resp.candidates[0].node, NodeId{2});
}

TEST_F(GlobalSelectionTest, WidensWhenLocalNodesScarce) {
  // Only remote nodes exist: the widening loop must still return them.
  GlobalSelector selector;
  const auto resp = selector.select(
      request("9zvxvf", 2), wrap({make_status(1, "dp3wnh"),  // Chicago-ish
                                  make_status(2, "dr5reg")}));
  EXPECT_EQ(resp.candidates.size(), 2u);
}

TEST_F(GlobalSelectionTest, PrefersAvailableNodes) {
  GlobalSelector selector;
  const auto resp = selector.select(
      request("9zvxvf", 2),
      wrap({make_status(1, "9zvxvf", 4, 30.0, /*utilization=*/0.9),
            make_status(2, "9zvxvf", 4, 30.0, /*utilization=*/0.1)}));
  ASSERT_EQ(resp.candidates.size(), 2u);
  EXPECT_EQ(resp.candidates[0].node, NodeId{2});
}

TEST_F(GlobalSelectionTest, PenalisesLoadedNodes) {
  GlobalSelector selector;
  const auto resp = selector.select(
      request("9zvxvf", 2),
      wrap({make_status(1, "9zvxvf", 4, 30.0, 0.0, /*users=*/8),
            make_status(2, "9zvxvf", 4, 30.0, 0.0, /*users=*/0)}));
  EXPECT_EQ(resp.candidates[0].node, NodeId{2});
}

TEST_F(GlobalSelectionTest, NetworkAffinityWins) {
  GlobalSelector selector;
  auto tagged = make_status(1, "9zvxvf");
  tagged.network_tag = "isp-x";
  const auto resp = selector.select(request("9zvxvf", 2, "isp-x"),
                                    wrap({make_status(2, "9zvxvf"), tagged}));
  EXPECT_EQ(resp.candidates[0].node, NodeId{1});
}

TEST_F(GlobalSelectionTest, CloudIsLastResort) {
  GlobalSelector selector;
  auto cloud = make_status(1, "9zvxvf", 64, 30.0);  // huge but cloud
  cloud.is_cloud = true;
  const auto resp = selector.select(
      request("9zvxvf", 2), wrap({cloud, make_status(2, "9zvxvf", 2, 50.0)}));
  ASSERT_EQ(resp.candidates.size(), 2u);
  EXPECT_EQ(resp.candidates[0].node, NodeId{2});
  EXPECT_EQ(resp.candidates[1].node, NodeId{1});
}

TEST_F(GlobalSelectionTest, ScoresOrderCandidatesDescending) {
  GlobalSelector selector;
  std::vector<net::NodeStatus> statuses;
  for (std::uint32_t i = 0; i < 6; ++i) {
    statuses.push_back(
        make_status(i, "9zvxvf", 2 + static_cast<int>(i), 30.0, 0.1 * i));
  }
  const auto resp = selector.select(request("9zvxvf", 6), wrap(statuses));
  for (std::size_t i = 1; i < resp.candidates.size(); ++i) {
    EXPECT_GE(resp.candidates[i - 1].score, resp.candidates[i].score);
  }
}

TEST_F(GlobalSelectionTest, DeterministicTieBreakOnNodeId) {
  GlobalSelector selector;
  const auto resp = selector.select(
      request("9zvxvf", 3),
      wrap({make_status(3, "9zvxvf"), make_status(1, "9zvxvf"),
            make_status(2, "9zvxvf")}));
  ASSERT_EQ(resp.candidates.size(), 3u);
  EXPECT_EQ(resp.candidates[0].node, NodeId{1});
  EXPECT_EQ(resp.candidates[1].node, NodeId{2});
  EXPECT_EQ(resp.candidates[2].node, NodeId{3});
}

TEST_F(GlobalSelectionTest, SelectIntoReuseMatchesFreshSelect) {
  // The out-param variant reuses the caller's response across queries; a
  // second query with fewer hits must clear the first query's leftovers,
  // and every reused answer must be byte-identical to a fresh select().
  GlobalSelector selector;
  Registry registry(sec(30.0));
  for (std::uint32_t i = 0; i < 6; ++i) {
    registry.upsert(make_status(i, "9zvxvf"), 0);
  }
  net::DiscoveryResponse reused;
  selector.select_into(request("9zvxvf", 5), registry, reused);
  EXPECT_EQ(reused.candidates.size(), 5u);

  const auto narrow = request("9zvxvf", 2);
  selector.select_into(narrow, registry, reused);
  const auto fresh = selector.select(narrow, registry);
  ASSERT_EQ(reused.candidates.size(), fresh.candidates.size());
  for (std::size_t i = 0; i < fresh.candidates.size(); ++i) {
    EXPECT_EQ(reused.candidates[i].node, fresh.candidates[i].node);
    EXPECT_EQ(reused.candidates[i].geohash, fresh.candidates[i].geohash);
    EXPECT_EQ(reused.candidates[i].score, fresh.candidates[i].score);
    EXPECT_EQ(reused.candidates[i].endpoint, fresh.candidates[i].endpoint);
  }
}

TEST(CentralManager, FullLifecycle) {
  sim::Simulator simulator;
  sim::SimScheduler clock(simulator);
  CentralManager manager(clock, {}, sec(3.0));

  manager.handle_register(make_status(1, "9zvxvf"));
  manager.handle_register(make_status(2, "9zvxvf"));
  EXPECT_EQ(manager.live_nodes(), 2u);

  net::DiscoveryRequest req;
  req.client = ClientId{50};
  req.geohash = "9zvxvf";
  req.top_n = 5;
  EXPECT_EQ(manager.handle_discover(req).candidates.size(), 2u);

  manager.handle_deregister(NodeId{1});
  EXPECT_EQ(manager.live_nodes(), 1u);

  // Node 2 stops heartbeating; after the TTL it vanishes from discovery.
  simulator.run_until(sec(10));
  EXPECT_EQ(manager.handle_discover(req).candidates.size(), 0u);
  EXPECT_EQ(manager.stats().discovery_queries, 2u);
  EXPECT_EQ(manager.stats().registrations, 2u);
  EXPECT_EQ(manager.stats().deregistrations, 1u);
}

TEST(CentralManager, HeartbeatRefreshesFreshness) {
  sim::Simulator simulator;
  sim::SimScheduler clock(simulator);
  CentralManager manager(clock, {}, sec(3.0));
  manager.handle_register(make_status(1, "9zvxvf"));
  simulator.run_until(sec(2));
  manager.handle_heartbeat(make_status(1, "9zvxvf"));
  simulator.run_until(sec(4));  // 2s since last heartbeat < 3s TTL
  EXPECT_EQ(manager.live_nodes(), 1u);
}

}  // namespace
}  // namespace eden::manager
