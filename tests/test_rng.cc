// Unit + property tests for the deterministic RNG and its distributions.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace eden {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  const Rng root(99);
  Rng f1 = root.fork("alpha");
  Rng f2 = root.fork("alpha");
  Rng f3 = root.fork("beta");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
  // Forking does not consume parent randomness, and names separate streams.
  Rng g1 = root.fork("alpha");
  g1.next_u64();
  EXPECT_NE(f3.next_u64(), g1.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 9.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, WeibullMeanMatchesGammaFormula) {
  Rng rng(12);
  const double shape = 1.5;
  const double scale = 50.0 / std::tgamma(1.0 + 1.0 / shape);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(shape, scale);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(14);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(15);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 50001; ++i) values.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(values.begin(), values.begin() + 25000, values.end());
  EXPECT_NEAR(values[25000], std::exp(1.0), 0.1);
}

// Property sweep: uniform_int is unbiased enough across several ranges.
class UniformIntSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(UniformIntSweep, RoughlyUniform) {
  const std::int64_t hi = GetParam();
  Rng rng(static_cast<std::uint64_t>(hi) * 977 + 1);
  std::vector<int> counts(static_cast<std::size_t>(hi) + 1, 0);
  const int n = 20000 * static_cast<int>(hi + 1);
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, hi)];
  const double expected = static_cast<double>(n) / static_cast<double>(hi + 1);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.06);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntSweep,
                         ::testing::Values<std::int64_t>(1, 2, 4, 9));

}  // namespace
}  // namespace eden
