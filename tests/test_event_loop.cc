// Unit tests for the poll-based event loop: wall-clock timers,
// cancellation, cross-thread post, fd watching.
#include "rpc/event_loop.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <thread>
#include <vector>

namespace eden::rpc {
namespace {

TEST(EventLoop, NowAdvances) {
  EventLoop loop;
  const SimTime a = loop.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(loop.now(), a);
}

TEST(EventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(msec(30), [&] { order.push_back(3); });
  loop.schedule_after(msec(10), [&] { order.push_back(1); });
  loop.schedule_after(msec(20), [&] {
    order.push_back(2);
  });
  loop.run_for(msec(80));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelPreventsTimer) {
  EventLoop loop;
  bool fired = false;
  const auto id = loop.schedule_after(msec(10), [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));
  loop.run_for(msec(40));
  EXPECT_FALSE(fired);
}

TEST(EventLoop, TimerCanScheduleAnotherTimer) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 3) loop.schedule_after(msec(5), chain);
  };
  loop.schedule_after(msec(5), chain);
  loop.run_for(msec(100));
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, StopFromTimer) {
  EventLoop loop;
  bool late_fired = false;
  loop.schedule_after(msec(10), [&] { loop.stop(); });
  loop.schedule_after(sec(30), [&] { late_fired = true; });
  loop.run();  // must return promptly via stop()
  EXPECT_FALSE(late_fired);
}

TEST(EventLoop, PostFromAnotherThread) {
  EventLoop loop;
  bool posted_ran = false;
  std::thread other([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    loop.post([&] {
      posted_ran = true;
      loop.stop();
    });
  });
  loop.run();
  other.join();
  EXPECT_TRUE(posted_ran);
}

TEST(EventLoop, WatchReportsReadablePipe) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  bool was_readable = false;
  loop.watch(fds[0], true, false, [&](bool readable, bool) {
    if (!readable) return;
    char buf[8];
    [[maybe_unused]] const auto n = ::read(fds[0], buf, sizeof(buf));
    was_readable = true;
    loop.stop();
  });
  loop.schedule_after(msec(5), [&] {
    [[maybe_unused]] const auto n = ::write(fds[1], "x", 1);
  });
  loop.run_for(msec(500));
  EXPECT_TRUE(was_readable);
  loop.unwatch(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, RunForReturnsOnDeadline) {
  EventLoop loop;
  const SimTime start = loop.now();
  loop.run_for(msec(30));
  const SimTime elapsed = loop.now() - start;
  EXPECT_GE(elapsed, msec(25));
  EXPECT_LT(elapsed, msec(400));
}

}  // namespace
}  // namespace eden::rpc
