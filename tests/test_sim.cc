// Unit tests for the discrete-event simulator: ordering, cancellation,
// periodic tasks, determinism.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/clock.h"

namespace eden::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(msec(30), [&] { order.push_back(3); });
  s.schedule_at(msec(10), [&] { order.push_back(1); });
  s.schedule_at(msec(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), msec(30));
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(msec(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  SimTime fired_at = -1;
  s.schedule_at(msec(10), [&] {
    s.schedule_after(msec(5), [&] { fired_at = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired_at, msec(15));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  s.run_until(msec(100));
  SimTime fired_at = -1;
  s.schedule_at(msec(1), [&] { fired_at = s.now(); });
  s.run_all();
  EXPECT_EQ(fired_at, msec(100));
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator s;
  SimTime fired_at = -1;
  s.schedule_after(msec(-50), [&] { fired_at = s.now(); });
  s.run_all();
  EXPECT_EQ(fired_at, 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(msec(1), [] {});
  s.run_all();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(10), [&] { ++fired; });
  s.schedule_at(msec(20), [&] { ++fired; });
  s.schedule_at(msec(21), [&] { ++fired; });
  s.run_until(msec(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), msec(20));
  s.run_until(msec(30));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator s;
  s.run_until(sec(5));
  EXPECT_EQ(s.now(), sec(5));
}

TEST(Simulator, EventsScheduledDuringRunAreProcessed) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(msec(1), recurse);
  };
  s.schedule_at(0, recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.events_processed(), 5u);
}

TEST(Simulator, RunAllThrowsOnRunaway) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_after(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run_all(1000), std::runtime_error);
}

TEST(Periodic, FiresEveryPeriodUntilStopped) {
  Simulator s;
  int count = 0;
  Periodic p(s, msec(10), msec(10), [&] { ++count; });
  s.run_until(msec(55));
  EXPECT_EQ(count, 5);  // t = 10, 20, 30, 40, 50
  p.stop();
  s.run_until(msec(200));
  EXPECT_EQ(count, 5);
}

TEST(Periodic, DestructorStops) {
  Simulator s;
  int count = 0;
  {
    Periodic p(s, 0, msec(10), [&] { ++count; });
    s.run_until(msec(25));
  }
  s.run_until(msec(100));
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
}

TEST(Periodic, CanStopItselfFromCallback) {
  Simulator s;
  int count = 0;
  Periodic p;
  p = Periodic(s, 0, msec(1), [&] {
    if (++count == 3) p.stop();
  });
  s.run_until(sec(1));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PendingExcludesCancelledImmediately) {
  Simulator s;
  const EventId a = s.schedule_at(msec(10), [] {});
  s.schedule_at(msec(20), [] {});
  s.schedule_at(msec(30), [] {});
  EXPECT_EQ(s.pending(), 3u);
  EXPECT_TRUE(s.cancel(a));
  // The cancelled event leaves pending() at once, not when its timestamp
  // is reached.
  EXPECT_EQ(s.pending(), 2u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, TombstonesDoNotAccumulate) {
  Simulator s;
  // A persistent pool plus heavy cancel churn: the timeout-rearm pattern
  // that made the old engine's queue grow without bound.
  std::vector<EventId> persistent;
  for (int i = 0; i < 100; ++i) {
    persistent.push_back(s.schedule_at(sec(1000) + i, [] {}));
  }
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = s.schedule_at(msec(100) + i % 50, [] {});
    ASSERT_TRUE(s.cancel(id));
    if (i % 10'000 == 0) {
      // live + not-yet-purged tombstones stays O(pending()).
      ASSERT_LE(s.queued_entries(), 300u);
    }
  }
  EXPECT_EQ(s.pending(), 100u);
  EXPECT_LE(s.queued_entries(), 300u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, StaleHandleAfterSlotReuse) {
  Simulator s;
  bool b_fired = false;
  const EventId a = s.schedule_at(msec(10), [] {});
  ASSERT_TRUE(s.cancel(a));
  // B reuses A's arena slot; A's stale handle must not be able to touch it.
  const EventId b = s.schedule_at(msec(20), [&] { b_fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(s.cancel(a));
  s.run_all();
  EXPECT_TRUE(b_fired);
}

TEST(Simulator, RescheduleIntoRunUntilGap) {
  // run_until can advance now() into a gap before the next queued batch;
  // a schedule into that gap must still fire before the later batch.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(msec(100), [&] { order.push_back(100); });
  s.schedule_at(msec(300), [&] { order.push_back(300); });
  s.run_until(msec(200));
  s.schedule_at(msec(250), [&] { order.push_back(250); });
  s.schedule_at(msec(220), [&] { order.push_back(220); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{100, 220, 250, 300}));
}

TEST(Periodic, MoveConstructionTransfersOwnership) {
  Simulator s;
  int count = 0;
  Periodic a(s, msec(10), msec(10), [&] { ++count; });
  Periodic b(std::move(a));
  EXPECT_TRUE(b.running());
  EXPECT_FALSE(a.running());  // NOLINT(bugprone-use-after-move) inert
  s.run_until(msec(25));
  EXPECT_EQ(count, 2);
  b.stop();
  s.run_until(msec(100));
  EXPECT_EQ(count, 2);
}

TEST(Periodic, MoveAssignmentStopsReplacedTask) {
  Simulator s;
  int fast = 0;
  int slow = 0;
  Periodic target(s, msec(1), msec(1), [&] { ++fast; });
  Periodic replacement(s, msec(10), msec(10), [&] { ++slow; });
  target = std::move(replacement);
  s.run_until(msec(50));
  EXPECT_EQ(fast, 0);  // the replaced task never fires
  EXPECT_EQ(slow, 5);  // t = 10, 20, 30, 40, 50
}

TEST(SimScheduler, AdaptsSimulator) {
  Simulator s;
  SimScheduler sched(s);
  EXPECT_EQ(sched.now(), 0);
  bool fired = false;
  const EventId id = sched.schedule_after(msec(5), [&] { fired = true; });
  EXPECT_GT(id, 0u);
  s.run_until(msec(10));
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), msec(10));
}

}  // namespace
}  // namespace eden::sim
