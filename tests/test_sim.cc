// Unit tests for the discrete-event simulator: ordering, cancellation,
// periodic tasks, determinism.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/clock.h"

namespace eden::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(msec(30), [&] { order.push_back(3); });
  s.schedule_at(msec(10), [&] { order.push_back(1); });
  s.schedule_at(msec(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), msec(30));
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(msec(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  SimTime fired_at = -1;
  s.schedule_at(msec(10), [&] {
    s.schedule_after(msec(5), [&] { fired_at = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired_at, msec(15));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  s.run_until(msec(100));
  SimTime fired_at = -1;
  s.schedule_at(msec(1), [&] { fired_at = s.now(); });
  s.run_all();
  EXPECT_EQ(fired_at, msec(100));
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator s;
  SimTime fired_at = -1;
  s.schedule_after(msec(-50), [&] { fired_at = s.now(); });
  s.run_all();
  EXPECT_EQ(fired_at, 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(msec(1), [] {});
  s.run_all();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  int fired = 0;
  s.schedule_at(msec(10), [&] { ++fired; });
  s.schedule_at(msec(20), [&] { ++fired; });
  s.schedule_at(msec(21), [&] { ++fired; });
  s.run_until(msec(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), msec(20));
  s.run_until(msec(30));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithEmptyQueue) {
  Simulator s;
  s.run_until(sec(5));
  EXPECT_EQ(s.now(), sec(5));
}

TEST(Simulator, EventsScheduledDuringRunAreProcessed) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(msec(1), recurse);
  };
  s.schedule_at(0, recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.events_processed(), 5u);
}

TEST(Simulator, RunAllThrowsOnRunaway) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_after(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run_all(1000), std::runtime_error);
}

TEST(Periodic, FiresEveryPeriodUntilStopped) {
  Simulator s;
  int count = 0;
  Periodic p(s, msec(10), msec(10), [&] { ++count; });
  s.run_until(msec(55));
  EXPECT_EQ(count, 5);  // t = 10, 20, 30, 40, 50
  p.stop();
  s.run_until(msec(200));
  EXPECT_EQ(count, 5);
}

TEST(Periodic, DestructorStops) {
  Simulator s;
  int count = 0;
  {
    Periodic p(s, 0, msec(10), [&] { ++count; });
    s.run_until(msec(25));
  }
  s.run_until(msec(100));
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
}

TEST(Periodic, CanStopItselfFromCallback) {
  Simulator s;
  int count = 0;
  Periodic p;
  p = Periodic(s, 0, msec(1), [&] {
    if (++count == 3) p.stop();
  });
  s.run_until(sec(1));
  EXPECT_EQ(count, 3);
}

TEST(SimScheduler, AdaptsSimulator) {
  Simulator s;
  SimScheduler sched(s);
  EXPECT_EQ(sched.now(), 0);
  bool fired = false;
  const EventId id = sched.schedule_after(msec(5), [&] { fired = true; });
  EXPECT_GT(id, 0u);
  s.run_until(msec(10));
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), msec(10));
}

}  // namespace
}  // namespace eden::sim
