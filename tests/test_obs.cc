// Tests for the eden::obs observability layer: metric instruments and
// snapshot merging, trace JSONL round-trips, Scenario wiring, and the
// determinism contract — a replicate's trace and metrics are byte-for-byte
// identical no matter how many ParallelRunner threads carried it.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "harness/experiments.h"
#include "harness/parallel_runner.h"
#include "harness/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eden::obs {
namespace {

// ---------------------------------------------------------------------------
// Metric instruments.

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  auto& hits = registry.counter("hits");
  hits.inc();
  hits.inc(4);
  EXPECT_EQ(hits.value(), 5u);

  auto& load = registry.gauge("load");
  load.set(2.5);
  load.add(-0.5);
  EXPECT_DOUBLE_EQ(load.value(), 2.0);

  auto& latency = registry.histogram("latency_ms");
  latency.observe(10.0);
  latency.observe(30.0);
  EXPECT_EQ(latency.stats().count(), 2u);
  EXPECT_DOUBLE_EQ(latency.stats().mean(), 20.0);
}

TEST(Metrics, RegistryHandsOutStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  // Creating more instruments must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i)).inc();
    registry.histogram("h" + std::to_string(i)).observe(i);
  }
  EXPECT_EQ(&a, &registry.counter("a"));
  a.inc();
  EXPECT_EQ(registry.counter("a").value(), 1u);
}

TEST(Metrics, HistogramBucketOfEdgeCases) {
  // Non-finite and non-positive values land in the underflow bucket.
  EXPECT_EQ(histogram_bucket_of(0.0), 0u);
  EXPECT_EQ(histogram_bucket_of(-3.0), 0u);
  EXPECT_EQ(histogram_bucket_of(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Huge values clamp to the last bucket.
  EXPECT_EQ(histogram_bucket_of(1e300), kHistogramBuckets - 1);

  // Every in-range value falls inside its bucket's bounds, and buckets are
  // monotone in the value.
  std::size_t prev = 0;
  for (double v = 0.001; v < 1e6; v *= 1.7) {
    const std::size_t b = histogram_bucket_of(v);
    EXPECT_GE(b, prev);
    prev = b;
    if (b > 0 && b + 1 < kHistogramBuckets) {
      const auto [lo, hi] = histogram_bucket_bounds(b);
      EXPECT_GE(v, lo);
      EXPECT_LT(v, hi);
    }
  }
}

TEST(Metrics, SnapshotMergeMatchesCombinedObservation) {
  // Observing a stream in two halves and merging the snapshots must agree
  // with observing the whole stream in one registry.
  MetricsRegistry whole, left, right;
  for (int i = 1; i <= 40; ++i) {
    const double v = 3.0 * i;
    whole.counter("n").inc();
    whole.histogram("v").observe(v);
    auto& part = (i <= 20) ? left : right;
    part.counter("n").inc();
    part.histogram("v").observe(v);
  }
  left.gauge("g").set(1.5);
  right.gauge("g").set(2.0);
  whole.gauge("g").set(3.5);  // merge adds gauges

  MetricsSnapshot merged = left.snapshot();
  merged.merge(right.snapshot());
  const MetricsSnapshot expected = whole.snapshot();

  EXPECT_EQ(merged.counters.at("n"), expected.counters.at("n"));
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), expected.gauges.at("g"));
  const auto& mh = merged.histograms.at("v");
  const auto& eh = expected.histograms.at("v");
  EXPECT_EQ(mh.stats.count(), eh.stats.count());
  EXPECT_NEAR(mh.stats.mean(), eh.stats.mean(), 1e-9);
  EXPECT_NEAR(mh.stats.variance(), eh.stats.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(mh.stats.min(), eh.stats.min());
  EXPECT_DOUBLE_EQ(mh.stats.max(), eh.stats.max());
  EXPECT_EQ(mh.buckets, eh.buckets);
}

TEST(Metrics, MergeWithEmptySnapshotIsIdentity) {
  MetricsRegistry registry;
  registry.counter("c").inc(7);
  registry.histogram("h").observe(12.0);
  MetricsSnapshot snap = registry.snapshot();
  const std::string before = snap.to_json();
  snap.merge(MetricsSnapshot{});
  EXPECT_EQ(snap.to_json(), before);

  MetricsSnapshot empty;
  empty.merge(registry.snapshot());
  EXPECT_EQ(empty.to_json(), before);
}

TEST(Metrics, ToJsonIsSortedAndStable) {
  MetricsRegistry registry;
  registry.counter("zeta").inc(2);
  registry.counter("alpha").inc(1);
  registry.gauge("mid").set(0.25);
  registry.histogram("hist").observe(4.0);
  const std::string json = registry.snapshot().to_json();
  EXPECT_EQ(json, registry.snapshot().to_json());
  // Sorted keys: alpha before zeta.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"hist\":{\"count\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace events and JSONL.

TEST(Trace, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    const char* name = to_string(kind);
    ASSERT_NE(name, nullptr);
    const auto back = kind_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(kind_from_string("not_an_event").has_value());
  EXPECT_FALSE(kind_from_string("").has_value());
}

TEST(Trace, JsonlLineRoundTrip) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    TraceEvent event;
    event.at = msec(123.5) + static_cast<SimTime>(i);
    event.kind = static_cast<EventKind>(i);
    event.actor = HostId{7};
    event.subject = (i % 2 == 0) ? HostId{3} : HostId{};
    event.span = 42 + i;
    event.value = 0.125 * static_cast<double>(i);
    const std::string line = to_jsonl_line(event);
    const auto parsed = parse_jsonl_line(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->at, event.at);
    EXPECT_EQ(parsed->kind, event.kind);
    EXPECT_EQ(parsed->actor, event.actor);
    EXPECT_EQ(parsed->subject, event.subject);
    EXPECT_EQ(parsed->span, event.span);
    EXPECT_NEAR(parsed->value, event.value, 1e-3);
  }
}

TEST(Trace, ParseRejectsMalformedLines) {
  const char* bad[] = {
      "",
      "{}",
      "not json",
      R"({"t":1,"ev":"bogus_kind","actor":1,"subject":2,"span":0,"value":0.000})",
      R"({"ev":"switch","t":1,"actor":1,"subject":2,"span":0,"value":0.000})",
      R"({"t":1,"ev":"switch","actor":1,"subject":2,"span":0})",
      R"({"t":1,"ev":"switch","actor":1,"subject":2,"span":0,"value":0.000}extra)",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_jsonl_line(line).has_value()) << line;
  }
}

TEST(Trace, RecorderCountsAndClear) {
  TraceRecorder recorder;
  recorder.record({msec(1.0), EventKind::kProbeSend, HostId{1}, HostId{2}, 1});
  recorder.record({msec(2.0), EventKind::kProbeSend, HostId{1}, HostId{3}, 1});
  recorder.record({msec(3.0), EventKind::kSwitch, HostId{1}, HostId{3}});
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.count(EventKind::kProbeSend), 2u);
  EXPECT_EQ(recorder.count(EventKind::kSwitch), 1u);
  EXPECT_EQ(recorder.count(EventKind::kFailover), 0u);

  // to_jsonl is one parseable line per event, in record order.
  const std::string jsonl = recorder.to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_TRUE(parse_jsonl_line(jsonl.substr(start, end - start)).has_value());
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3u);

  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.count(EventKind::kProbeSend), 0u);
}

// ---------------------------------------------------------------------------
// Scenario wiring and the cross-thread determinism contract.

harness::NodeSpec obs_volunteer(const std::string& name, double lat,
                                double lon) {
  harness::NodeSpec spec;
  spec.name = name;
  spec.position = {lat, lon};
  spec.tier = net::AccessTier::kFiber;
  spec.cores = 2;
  spec.base_frame_ms = 25.0;
  return spec;
}

struct TracedRun {
  std::string jsonl;
  MetricsSnapshot metrics;
};

// One deterministic replicate: three nodes, one client, kill the attached
// node mid-run so the trace exercises the failure path too.
TracedRun traced_run(std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.trace = true;
  harness::Scenario scenario(config, harness::NetKind::kGeo);
  scenario.add_node(obs_volunteer("a", 44.978, -93.265));
  scenario.add_node(obs_volunteer("b", 44.99, -93.25));
  scenario.add_node(obs_volunteer("c", 45.01, -93.20));
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig client_config;
  client_config.top_n = 3;
  client_config.probing_period = sec(2.0);
  client_config.proactive_connections = true;
  auto& client = scenario.add_edge_client(
      harness::ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable,
                          ""},
      client_config);
  client.start();
  scenario.run_until(sec(6.0));
  if (client.current_node()) {
    const auto index = scenario.node_index(*client.current_node());
    if (index) scenario.stop_node(*index, /*graceful=*/false);
  }
  scenario.run_until(sec(12.0));

  TracedRun out;
  out.jsonl = scenario.trace_recorder()->to_jsonl();
  out.metrics = scenario.metrics_snapshot();
  return out;
}

TEST(ScenarioObs, DisabledByDefaultWithEmptySnapshot) {
  harness::Scenario scenario(harness::ScenarioConfig{.seed = 3},
                             harness::NetKind::kGeo);
  EXPECT_EQ(scenario.trace_recorder(), nullptr);
  EXPECT_EQ(scenario.metrics_registry(), nullptr);
  const MetricsSnapshot snap = scenario.metrics_snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(ScenarioObs, EnableObservabilityIsIdempotent) {
  harness::Scenario scenario(harness::ScenarioConfig{.seed = 3},
                             harness::NetKind::kGeo);
  scenario.enable_observability();
  auto* recorder = scenario.trace_recorder();
  auto* registry = scenario.metrics_registry();
  ASSERT_NE(recorder, nullptr);
  scenario.enable_observability();
  EXPECT_EQ(scenario.trace_recorder(), recorder);
  EXPECT_EQ(scenario.metrics_registry(), registry);
}

TEST(ScenarioObs, TracedRunCoversTheProtocol) {
  const TracedRun run = traced_run(/*seed=*/17);
  ASSERT_FALSE(run.jsonl.empty());

  // Re-parse the JSONL and count by kind: every line must parse, and the
  // trace must cover discovery, probing, join, keepalive and failover.
  std::array<std::size_t, kEventKindCount> counts{};
  std::size_t start = 0;
  while (start < run.jsonl.size()) {
    std::size_t end = run.jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const auto event =
        parse_jsonl_line(run.jsonl.substr(start, end - start));
    ASSERT_TRUE(event.has_value());
    counts[static_cast<std::size_t>(event->kind)] += 1;
    start = end + 1;
  }
  auto count = [&counts](EventKind kind) {
    return counts[static_cast<std::size_t>(kind)];
  };
  EXPECT_GE(count(EventKind::kDiscoverySend), 2u);
  EXPECT_GE(count(EventKind::kDiscoveryResult), 2u);
  EXPECT_GE(count(EventKind::kProbeSend), 3u);
  EXPECT_GE(count(EventKind::kProbeResult), 3u);
  EXPECT_GE(count(EventKind::kJoinSend), 1u);
  EXPECT_GE(count(EventKind::kJoinAccept), 1u);
  EXPECT_GE(count(EventKind::kNodeRegister), 3u);
  EXPECT_GE(count(EventKind::kNodeHeartbeat), 3u);
  EXPECT_EQ(count(EventKind::kNodeDeath), 1u);
  EXPECT_GE(count(EventKind::kNodeFailure), 1u);
  EXPECT_GE(count(EventKind::kFailover), 1u);
  EXPECT_EQ(count(EventKind::kProbeCycleBegin),
            count(EventKind::kProbeCycleEnd));
  EXPECT_GE(count(EventKind::kProbeCycleBegin), 2u);

  // The client-side metrics agree with the trace.
  EXPECT_EQ(run.metrics.counters.at("client.failovers"),
            count(EventKind::kFailover));
  EXPECT_EQ(run.metrics.histograms.at("client.probe_cycle_ms").stats.count(),
            count(EventKind::kProbeCycleEnd));
}

TEST(ScenarioObs, TraceIsByteIdenticalAcrossThreadCounts) {
  // The same replicates fanned across differently-sized pools must yield
  // byte-identical traces and metrics — the bench-level merge depends on
  // this.
  const std::uint64_t seeds[] = {5, 6, 7};
  std::vector<TracedRun> sequential;
  for (const std::uint64_t seed : seeds) sequential.push_back(traced_run(seed));

  for (const unsigned threads : {1u, 2u, 7u}) {
    harness::ParallelRunner pool(threads);
    std::vector<std::function<TracedRun()>> jobs;
    for (const std::uint64_t seed : seeds) {
      jobs.emplace_back([seed] { return traced_run(seed); });
    }
    const std::vector<TracedRun> pooled = pool.map<TracedRun>(std::move(jobs));
    ASSERT_EQ(pooled.size(), sequential.size());
    for (std::size_t i = 0; i < pooled.size(); ++i) {
      EXPECT_EQ(pooled[i].jsonl, sequential[i].jsonl)
          << "threads=" << threads << " replicate=" << i;
      EXPECT_EQ(pooled[i].metrics.to_json(), sequential[i].metrics.to_json())
          << "threads=" << threads << " replicate=" << i;
    }

    // Merged fleet-wide metrics are equally thread-count independent.
    MetricsSnapshot merged;
    for (const auto& r : pooled) merged.merge(r.metrics);
    MetricsSnapshot expected;
    for (const auto& r : sequential) expected.merge(r.metrics);
    EXPECT_EQ(merged.to_json(), expected.to_json()) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace eden::obs
