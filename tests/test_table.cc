// Unit tests for the ASCII table / CSV renderer.
#include "common/table.h"

#include <gtest/gtest.h>

namespace eden {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2     |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::integer(-7), "-7");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"x"});
  t.add_row({"plain"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\"\n"), std::string::npos);
}

TEST(Table, CsvHeaderFirst) {
  Table t({"h1", "h2"});
  t.add_row({"a", "b"});
  EXPECT_EQ(t.to_csv(), "h1,h2\na,b\n");
}

}  // namespace
}  // namespace eden
