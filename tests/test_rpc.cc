// Loopback tests for the framed RPC layer: request/response, async
// responders, one-way messages, timeouts, dead-peer failures.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"

namespace eden::rpc {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<RpcServer>(loop_);
    ASSERT_TRUE(server_->listen(0));
    client_ = std::make_unique<RpcClient>(loop_, server_->endpoint());
  }

  // Run the loop until `done` is true or the deadline passes.
  void run_until(const bool& done, SimDuration deadline = sec(2.0)) {
    const SimTime end = loop_.now() + deadline;
    while (!done && loop_.now() < end) loop_.run_for(msec(10));
  }

  EventLoop loop_;
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  server_->handle(MessageType::kRttProbe,
                  [](Reader& reader, RpcServer::Responder respond) {
                    Writer w;
                    w.u32(reader.u32() + 1);
                    respond(w.take());
                  });
  bool done = false;
  std::uint32_t result = 0;
  Writer w;
  w.u32(41);
  client_->call(MessageType::kRttProbe, w.data(), sec(1),
                [&](std::optional<std::vector<std::uint8_t>> response) {
                  ASSERT_TRUE(response.has_value());
                  Reader r(*response);
                  result = r.u32();
                  done = true;
                });
  run_until(done);
  EXPECT_TRUE(done);
  EXPECT_EQ(result, 42u);
}

TEST_F(RpcTest, ManyConcurrentRequestsCorrelate) {
  server_->handle(MessageType::kProcessProbe,
                  [](Reader& reader, RpcServer::Responder respond) {
                    Writer w;
                    w.u32(reader.u32() * 10);
                    respond(w.take());
                  });
  int completed = 0;
  bool done = false;
  for (std::uint32_t i = 0; i < 50; ++i) {
    Writer w;
    w.u32(i);
    client_->call(MessageType::kProcessProbe, w.data(), sec(1),
                  [&, i](std::optional<std::vector<std::uint8_t>> response) {
                    ASSERT_TRUE(response.has_value());
                    Reader r(*response);
                    EXPECT_EQ(r.u32(), i * 10);
                    if (++completed == 50) done = true;
                  });
  }
  run_until(done);
  EXPECT_EQ(completed, 50);
}

TEST_F(RpcTest, DeferredResponderRepliesLater) {
  // The handler stores the responder and answers from a timer — the
  // pattern used by the live node's asynchronous frame processing.
  server_->handle(MessageType::kOffload,
                  [this](Reader&, RpcServer::Responder respond) {
                    loop_.schedule_after(msec(30), [respond] {
                      Writer w;
                      w.str("late");
                      respond(w.data());
                    });
                  });
  bool done = false;
  std::string result;
  client_->call(MessageType::kOffload, {}, sec(1),
                [&](std::optional<std::vector<std::uint8_t>> response) {
                  ASSERT_TRUE(response.has_value());
                  Reader r(*response);
                  result = r.str();
                  done = true;
                });
  run_until(done);
  EXPECT_EQ(result, "late");
}

TEST_F(RpcTest, TimeoutFiresWhenServerSilent) {
  server_->handle(MessageType::kJoin,
                  [](Reader&, RpcServer::Responder) { /* never responds */ });
  bool done = false;
  bool got_value = true;
  client_->call(MessageType::kJoin, {}, msec(50),
                [&](std::optional<std::vector<std::uint8_t>> response) {
                  got_value = response.has_value();
                  done = true;
                });
  run_until(done);
  EXPECT_TRUE(done);
  EXPECT_FALSE(got_value);
}

TEST_F(RpcTest, OneWayMessageArrives) {
  bool received = false;
  std::uint32_t value = 0;
  server_->handle_one_way(MessageType::kHeartbeat, [&](Reader& reader) {
    value = reader.u32();
    received = true;
  });
  Writer w;
  w.u32(1234);
  client_->send_one_way(MessageType::kHeartbeat, w.data());
  run_until(received);
  EXPECT_TRUE(received);
  EXPECT_EQ(value, 1234u);
}

TEST_F(RpcTest, CallToDeadPortFails) {
  // A port with nothing listening: connection refused surfaces as nullopt
  // (possibly via the timeout).
  RpcClient dead(loop_, "127.0.0.1:1");
  bool done = false;
  bool got_value = true;
  dead.call(MessageType::kRttProbe, {}, msec(300),
            [&](std::optional<std::vector<std::uint8_t>> response) {
              got_value = response.has_value();
              done = true;
            });
  run_until(done);
  EXPECT_TRUE(done);
  EXPECT_FALSE(got_value);
}

TEST_F(RpcTest, ServerCloseFailsPendingCalls) {
  server_->handle(MessageType::kJoin,
                  [](Reader&, RpcServer::Responder) { /* hold */ });
  bool done = false;
  client_->call(MessageType::kJoin, {}, sec(5),
                [&](std::optional<std::vector<std::uint8_t>> response) {
                  EXPECT_FALSE(response.has_value());
                  done = true;
                });
  loop_.schedule_after(msec(30), [this] { server_->close(); });
  run_until(done);
  EXPECT_TRUE(done);
}

TEST_F(RpcTest, ClientReconnectsAfterServerRestartlessDrop) {
  server_->handle(MessageType::kRttProbe,
                  [](Reader&, RpcServer::Responder respond) { respond({}); });
  // First call establishes a connection.
  bool first = false;
  client_->call(MessageType::kRttProbe, {}, sec(1),
                [&](auto response) { first = response.has_value(); });
  run_until(first);
  ASSERT_TRUE(first);

  // Server drops every connection; the next call must reconnect.
  bool dropped = false;
  loop_.schedule_after(msec(10), [&] {
    server_->close();
    ASSERT_TRUE(server_->listen(0));
    dropped = true;
  });
  run_until(dropped);
  // Note: new ephemeral port — point a fresh client at it.
  RpcClient retry(loop_, server_->endpoint());
  bool second = false;
  retry.call(MessageType::kRttProbe, {}, sec(1),
             [&](auto response) { second = response.has_value(); });
  run_until(second);
  EXPECT_TRUE(second);
}

TEST_F(RpcTest, GarbageBytesDoNotCrashServer) {
  // Fuzz-ish: raw sockets shovel random bytes at the server; it must drop
  // the connections (bad framing) and keep serving well-formed clients.
  server_->handle(MessageType::kRttProbe,
                  [](Reader&, RpcServer::Responder respond) { respond({}); });
  Rng rng(99);
  for (int conn = 0; conn < 10; ++conn) {
    auto garbage = connect_to(loop_, server_->endpoint());
    ASSERT_NE(garbage, nullptr);
    std::vector<std::uint8_t> noise;
    for (int i = 0; i < 256; ++i) {
      noise.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    // Bypass framing: feed the noise as if it were a frame body with a
    // deliberately absurd declared length among random bytes.
    garbage->send_frame(rng.next_u64(),
                        static_cast<std::uint16_t>(rng.uniform_int(0, 65535)),
                        noise);
    loop_.run_for(msec(5));
  }
  // A well-formed call still succeeds afterwards.
  bool done = false;
  client_->call(MessageType::kRttProbe, {}, sec(1),
                [&](auto response) { done = response.has_value(); });
  run_until(done);
  EXPECT_TRUE(done);
}

TEST_F(RpcTest, LargePayloadRoundTrip) {
  server_->handle(MessageType::kOffload,
                  [](Reader& reader, RpcServer::Responder respond) {
                    const std::string payload = reader.str();
                    Writer w;
                    w.u32(static_cast<std::uint32_t>(payload.size()));
                    respond(w.take());
                  });
  const std::string big(1 << 20, 'x');  // 1 MiB
  Writer w;
  w.str(big);
  bool done = false;
  std::uint32_t size = 0;
  client_->call(MessageType::kOffload, w.data(), sec(2),
                [&](std::optional<std::vector<std::uint8_t>> response) {
                  ASSERT_TRUE(response.has_value());
                  Reader r(*response);
                  size = r.u32();
                  done = true;
                });
  run_until(done);
  EXPECT_EQ(size, big.size());
}

}  // namespace
}  // namespace eden::rpc
