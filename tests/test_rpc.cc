// Loopback tests for the framed RPC layer: request/response, async
// responders, one-way messages, timeouts, dead-peer failures.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/rng.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"

namespace eden::rpc {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<RpcServer>(loop_, pool_);
    ASSERT_TRUE(server_->listen(0));
    client_ = std::make_unique<RpcClient>(loop_, pool_, server_->endpoint());
  }

  // Run the loop until `done` is true or the deadline passes.
  void run_until(const bool& done, SimDuration deadline = sec(2.0)) {
    const SimTime end = loop_.now() + deadline;
    while (!done && loop_.now() < end) loop_.run_for(msec(10));
  }

  EventLoop loop_;
  ConnectionPool pool_{loop_};
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  server_->handle(MessageType::kRttProbe,
                  [](Reader& reader, RpcServer::Responder respond) {
                    Writer w;
                    w.u32(reader.u32() + 1);
                    respond(w.data());
                  });
  bool done = false;
  std::uint32_t result = 0;
  Writer w;
  w.u32(41);
  client_->call(MessageType::kRttProbe, w.data(), sec(1),
                [&](RpcResult response) {
                  ASSERT_TRUE(response.ok);
                  Reader r(response.data, response.size);
                  result = r.u32();
                  done = true;
                });
  run_until(done);
  EXPECT_TRUE(done);
  EXPECT_EQ(result, 42u);
}

TEST_F(RpcTest, ManyConcurrentRequestsCorrelate) {
  server_->handle(MessageType::kProcessProbe,
                  [](Reader& reader, RpcServer::Responder respond) {
                    Writer w;
                    w.u32(reader.u32() * 10);
                    respond(w.data());
                  });
  int completed = 0;
  bool done = false;
  for (std::uint32_t i = 0; i < 50; ++i) {
    Writer w;
    w.u32(i);
    client_->call(MessageType::kProcessProbe, w.data(), sec(1),
                  [&, i](RpcResult response) {
                    ASSERT_TRUE(response.ok);
                    Reader r(response.data, response.size);
                    EXPECT_EQ(r.u32(), i * 10);
                    if (++completed == 50) done = true;
                  });
  }
  run_until(done);
  EXPECT_EQ(completed, 50);
}

TEST_F(RpcTest, DeferredResponderRepliesLater) {
  // The handler stores the responder and answers from a timer — the
  // pattern used by the live node's asynchronous frame processing.
  server_->handle(MessageType::kOffload,
                  [this](Reader&, RpcServer::Responder respond) {
                    loop_.schedule_after(msec(30), [respond] {
                      Writer w;
                      w.str("late");
                      respond(w.data());
                    });
                  });
  bool done = false;
  std::string result;
  client_->call(MessageType::kOffload, {}, sec(1),
                [&](RpcResult response) {
                  ASSERT_TRUE(response.ok);
                  Reader r(response.data, response.size);
                  result = r.str();
                  done = true;
                });
  run_until(done);
  EXPECT_EQ(result, "late");
}

TEST_F(RpcTest, TimeoutFiresWhenServerSilent) {
  server_->handle(MessageType::kJoin,
                  [](Reader&, RpcServer::Responder) { /* never responds */ });
  bool done = false;
  bool got_value = true;
  client_->call(MessageType::kJoin, {}, msec(50), [&](RpcResult response) {
    got_value = response.ok;
    done = true;
  });
  run_until(done);
  EXPECT_TRUE(done);
  EXPECT_FALSE(got_value);
}

TEST_F(RpcTest, OneWayMessageArrives) {
  bool received = false;
  std::uint32_t value = 0;
  server_->handle_one_way(MessageType::kHeartbeat, [&](Reader& reader) {
    value = reader.u32();
    received = true;
  });
  Writer w;
  w.u32(1234);
  client_->send_one_way(MessageType::kHeartbeat, w.data());
  run_until(received);
  EXPECT_TRUE(received);
  EXPECT_EQ(value, 1234u);
}

TEST_F(RpcTest, CallToDeadPortFails) {
  // A port with nothing listening: connection refused surfaces as !ok
  // (possibly via the timeout).
  RpcClient dead(loop_, pool_, "127.0.0.1:1");
  bool done = false;
  bool got_value = true;
  dead.call(MessageType::kRttProbe, {}, msec(300), [&](RpcResult response) {
    got_value = response.ok;
    done = true;
  });
  run_until(done);
  EXPECT_TRUE(done);
  EXPECT_FALSE(got_value);
}

TEST_F(RpcTest, ServerCloseFailsPendingCalls) {
  server_->handle(MessageType::kJoin,
                  [](Reader&, RpcServer::Responder) { /* hold */ });
  bool done = false;
  client_->call(MessageType::kJoin, {}, sec(5), [&](RpcResult response) {
    EXPECT_FALSE(response.ok);
    done = true;
  });
  loop_.schedule_after(msec(30), [this] { server_->close(); });
  run_until(done);
  EXPECT_TRUE(done);
}

TEST_F(RpcTest, ClientReconnectsAfterServerRestartlessDrop) {
  server_->handle(MessageType::kRttProbe,
                  [](Reader&, RpcServer::Responder respond) { respond({}); });
  // First call establishes a connection.
  bool first = false;
  client_->call(MessageType::kRttProbe, {}, sec(1),
                [&](RpcResult response) { first = response.ok; });
  run_until(first);
  ASSERT_TRUE(first);

  // Server drops every connection; the next call must reconnect.
  bool dropped = false;
  loop_.schedule_after(msec(10), [&] {
    server_->close();
    ASSERT_TRUE(server_->listen(0));
    dropped = true;
  });
  run_until(dropped);
  // Note: new ephemeral port — point a fresh client at it.
  RpcClient retry(loop_, pool_, server_->endpoint());
  bool second = false;
  retry.call(MessageType::kRttProbe, {}, sec(1),
             [&](RpcResult response) { second = response.ok; });
  run_until(second);
  EXPECT_TRUE(second);
}

TEST_F(RpcTest, LatePendingSlotReuseDoesNotMisdeliver) {
  // Force a timeout, then issue a new call that re-uses the freed pending
  // slot. The (instance, gen, idx) triple in the request id must keep the
  // stale response (if any) from completing the new call.
  server_->handle(MessageType::kJoin,
                  [](Reader&, RpcServer::Responder) { /* never responds */ });
  server_->handle(MessageType::kRttProbe,
                  [](Reader& reader, RpcServer::Responder respond) {
                    Writer w;
                    w.u32(reader.u32());
                    respond(w.data());
                  });
  bool timed_out = false;
  client_->call(MessageType::kJoin, {}, msec(30), [&](RpcResult response) {
    EXPECT_FALSE(response.ok);
    timed_out = true;
  });
  run_until(timed_out);
  ASSERT_TRUE(timed_out);

  bool done = false;
  std::uint32_t echoed = 0;
  Writer w;
  w.u32(777);
  client_->call(MessageType::kRttProbe, w.data(), sec(1),
                [&](RpcResult response) {
                  ASSERT_TRUE(response.ok);
                  Reader r(response.data, response.size);
                  echoed = r.u32();
                  done = true;
                });
  run_until(done);
  EXPECT_EQ(echoed, 777u);
  EXPECT_EQ(client_->pending_count(), 0u);
}

// Raw blocking socket to 127.0.0.1:port, for bypassing the framing layer.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(RpcTest, GarbageBytesDoNotCrashServer) {
  // Fuzz-ish: raw sockets shovel random bytes at the server; it must drop
  // the connections (bad framing) and keep serving well-formed clients.
  server_->handle(MessageType::kRttProbe,
                  [](Reader&, RpcServer::Responder respond) { respond({}); });
  Rng rng(99);
  for (int conn = 0; conn < 10; ++conn) {
    const int fd = raw_connect(server_->port());
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> noise;
    // Lead with an absurd declared length so the framing check trips,
    // followed by random bytes.
    const std::uint32_t bad_length = 0xfffffff0u;
    noise.resize(4);
    std::memcpy(noise.data(), &bad_length, 4);
    for (int i = 0; i < 256; ++i) {
      noise.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    ASSERT_EQ(::send(fd, noise.data(), noise.size(), 0),
              static_cast<ssize_t>(noise.size()));
    loop_.run_for(msec(5));
    ::close(fd);
    loop_.run_for(msec(5));
  }
  // A well-formed call still succeeds afterwards.
  bool done = false;
  client_->call(MessageType::kRttProbe, {}, sec(1),
                [&](RpcResult response) { done = response.ok; });
  run_until(done);
  EXPECT_TRUE(done);
}

TEST_F(RpcTest, LargePayloadRoundTrip) {
  server_->handle(MessageType::kOffload,
                  [](Reader& reader, RpcServer::Responder respond) {
                    const std::string payload = reader.str();
                    Writer w;
                    w.u32(static_cast<std::uint32_t>(payload.size()));
                    respond(w.data());
                  });
  const std::string big(1 << 20, 'x');  // 1 MiB
  Writer w;
  w.str(big);
  bool done = false;
  std::uint32_t size = 0;
  client_->call(MessageType::kOffload, w.data(), sec(2),
                [&](RpcResult response) {
                  ASSERT_TRUE(response.ok);
                  Reader r(response.data, response.size);
                  size = r.u32();
                  done = true;
                });
  run_until(done);
  EXPECT_EQ(size, big.size());
}

TEST_F(RpcTest, NoPoolChunksLeakAfterTraffic) {
  server_->handle(MessageType::kRttProbe,
                  [](Reader&, RpcServer::Responder respond) { respond({}); });
  int completed = 0;
  bool done = false;
  for (int i = 0; i < 20; ++i) {
    client_->call(MessageType::kRttProbe, {}, sec(1), [&](RpcResult response) {
      EXPECT_TRUE(response.ok);
      if (++completed == 20) done = true;
    });
  }
  run_until(done);
  ASSERT_EQ(completed, 20);
  // All outboxes drained: no chunk should still be held.
  EXPECT_EQ(pool_.buffers().in_use(), 0u);
  client_->close();
  server_->close();
  pool_.close_all();
  EXPECT_EQ(pool_.buffers().in_use(), 0u);
  EXPECT_EQ(pool_.open_connections(), 0u);
}

}  // namespace
}  // namespace eden::rpc
