// Unit tests for harness::ParallelRunner: ordering, exception propagation,
// and the property the benches rely on — a pool of N threads produces
// bitwise-identical results to running the same jobs sequentially.
#include "harness/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/network_model.h"
#include "sim/simulator.h"

namespace eden::harness {
namespace {

TEST(ParallelRunner, AtLeastOneThread) {
  EXPECT_GE(ParallelRunner(0).threads(), 1u);
  EXPECT_EQ(ParallelRunner(3).threads(), 3u);
}

TEST(ParallelRunner, RunsEveryJobOnce) {
  ParallelRunner pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    jobs.emplace_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run(std::move(jobs));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, MapDepositsByJobIndex) {
  ParallelRunner pool(4);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 32; ++i) {
    jobs.emplace_back([i] {
      // Uneven work so completion order differs from submission order.
      volatile int spin = (31 - i) * 1000;
      while (spin > 0) spin = spin - 1;
      return i * i;
    });
  }
  const std::vector<int> out = pool.map<int>(std::move(jobs));
  ASSERT_EQ(out.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, FirstExceptionRethrownAfterAllJobsFinish) {
  ParallelRunner pool(4);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.emplace_back([&completed, i] {
      if (i == 5) throw std::runtime_error("job 5 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.run(std::move(jobs)), std::runtime_error);
  // The failure does not cancel the remaining jobs.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ParallelRunner, EmptyJobListIsFine) {
  ParallelRunner pool(4);
  pool.run({});
  EXPECT_TRUE(pool.map<int>({}).empty());
}

// One simulation replicate, the shape every bench job has: its own
// simulator, network model and RNG streams. Returns a digest of the full
// event sequence, so any divergence — ordering, timing, RNG draws —
// changes the result.
std::uint64_t replicate_digest(std::uint64_t seed) {
  sim::Simulator simulator;
  net::GeoNetwork network(0.0);
  Rng rng(seed);
  for (std::uint32_t h = 1; h <= 12; ++h) {
    network.add_host(HostId{h},
                     {rng.uniform(-60, 60), rng.uniform(-180, 180)},
                     static_cast<net::AccessTier>(rng.uniform_int(0, 5)),
                     static_cast<int>(rng.uniform_int(0, 2)));
  }
  std::uint64_t digest = 0xcbf29ce484222325ull;
  auto mix = [&digest](std::uint64_t v) {
    digest = (digest ^ v) * 0x100000001b3ull;
  };
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
    const auto b = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
    const SimDuration owd = network.sample_owd(HostId{a}, HostId{b}, rng);
    simulator.schedule_at(simulator.now() + owd + rng.uniform_int(0, 5000),
                          [&mix, &simulator, i] {
                            mix(static_cast<std::uint64_t>(simulator.now()));
                            mix(static_cast<std::uint64_t>(i));
                          });
    if (i % 64 == 0) simulator.run_until(simulator.now() + msec(1.0));
  }
  simulator.run_all();
  mix(simulator.events_processed());
  return digest;
}

TEST(ParallelRunner, ParallelBitwiseIdenticalToSequential) {
  constexpr int kReplicates = 12;
  std::vector<std::uint64_t> sequential;
  for (int i = 0; i < kReplicates; ++i) {
    sequential.push_back(replicate_digest(1000 + i));
  }
  for (const unsigned threads : {1u, 2u, 7u}) {
    ParallelRunner pool(threads);
    std::vector<std::function<std::uint64_t()>> jobs;
    for (int i = 0; i < kReplicates; ++i) {
      jobs.emplace_back([i] { return replicate_digest(1000 + i); });
    }
    EXPECT_EQ(pool.map<std::uint64_t>(std::move(jobs)), sequential)
        << "thread count " << threads;
  }
}

}  // namespace
}  // namespace eden::harness
