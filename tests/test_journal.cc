// Tests for the durable manager journal (DESIGN.md §15): record/batch
// round-trips, group-commit batching boundaries, torn-write truncation and
// recovery, replay idempotence, file-backend persistence, the CentralManager
// mutation-sink wiring, warm-standby tail + takeover, and the live-runtime
// restart recovery path. Also pins the `.eden-repro` malformed-input
// rejection (ISSUE 10 satellite: parse failures must be detected, not
// silently coerced).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/repro.h"
#include "journal/backend.h"
#include "journal/image.h"
#include "journal/manager_journal.h"
#include "journal/record.h"
#include "journal/standby.h"
#include "manager/central_manager.h"
#include "rpc/live_runtime.h"
#include "sim/clock.h"
#include "sim/simulator.h"

namespace eden::journal {
namespace {

net::NodeStatus status_for(std::uint32_t id, double frame_ms = 25.0) {
  net::NodeStatus status;
  status.node = NodeId{id};
  status.geohash = "9zvx";
  status.cores = 4;
  status.base_frame_ms = frame_ms;
  status.attached_users = 2;
  status.utilization = 0.375;
  status.dedicated = (id % 2) == 0;
  status.is_cloud = false;
  status.network_tag = "isp-a";
  status.endpoint = "10.0.0." + std::to_string(id) + ":7100";
  status.app_types = {"render", "detect"};
  status.queue_depth = 3;
  status.burst_credits = 12.5;
  status.p95_proc_ms = frame_ms * 1.75;
  return status;
}

JournalRecord record_for(std::uint64_t lsn, RecordKind kind,
                         std::uint32_t node) {
  JournalRecord record;
  record.lsn = lsn;
  record.at = msec(100.0 * static_cast<double>(lsn));
  record.kind = kind;
  record.node = NodeId{node};
  if (kind == RecordKind::kRegister) {
    record.rejoin = (lsn % 2) == 0;
    record.status = status_for(node);
  } else if (kind == RecordKind::kHeartbeat) {
    record.status = status_for(node, 30.0 + static_cast<double>(lsn));
  } else if (kind == RecordKind::kEpoch) {
    record.epoch = lsn;
    record.overloaded = (lsn % 2) == 1;
  }
  return record;
}

// Encode `records` as one framed batch.
std::string one_batch(const std::vector<JournalRecord>& records) {
  std::string payload;
  for (const JournalRecord& r : records) encode_record(r, payload);
  std::string framed;
  encode_batch_frame(payload, static_cast<std::uint32_t>(records.size()),
                     framed);
  return framed;
}

TEST(JournalRecord, RoundTripsEveryKindAndField) {
  const std::vector<JournalRecord> sent = {
      record_for(1, RecordKind::kRegister, 7),
      record_for(2, RecordKind::kHeartbeat, 7),
      record_for(3, RecordKind::kEpoch, 7),
      record_for(4, RecordKind::kLeave, 7),
      record_for(5, RecordKind::kExpire, 9),
  };
  const std::string bytes = one_batch(sent);
  const ScanResult scanned = scan(bytes);

  EXPECT_FALSE(scanned.torn);
  EXPECT_EQ(scanned.batches, 1u);
  EXPECT_EQ(scanned.valid_bytes, bytes.size());
  EXPECT_EQ(scanned.last_lsn, 5u);
  ASSERT_EQ(scanned.records.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const JournalRecord& a = sent[i];
    const JournalRecord& b = scanned.records[i];
    EXPECT_EQ(a.lsn, b.lsn);
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.rejoin, b.rejoin);
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.overloaded, b.overloaded);
    if (a.kind == RecordKind::kRegister || a.kind == RecordKind::kHeartbeat) {
      EXPECT_EQ(a.status.node, b.status.node);
      EXPECT_EQ(a.status.geohash, b.status.geohash);
      EXPECT_EQ(a.status.cores, b.status.cores);
      EXPECT_DOUBLE_EQ(a.status.base_frame_ms, b.status.base_frame_ms);
      EXPECT_EQ(a.status.attached_users, b.status.attached_users);
      EXPECT_DOUBLE_EQ(a.status.utilization, b.status.utilization);
      EXPECT_EQ(a.status.dedicated, b.status.dedicated);
      EXPECT_EQ(a.status.is_cloud, b.status.is_cloud);
      EXPECT_EQ(a.status.network_tag, b.status.network_tag);
      EXPECT_EQ(a.status.endpoint, b.status.endpoint);
      EXPECT_EQ(a.status.app_types, b.status.app_types);
      EXPECT_EQ(a.status.queue_depth, b.status.queue_depth);
      EXPECT_DOUBLE_EQ(a.status.burst_credits, b.status.burst_credits);
      EXPECT_DOUBLE_EQ(a.status.p95_proc_ms, b.status.p95_proc_ms);
    }
  }
}

TEST(JournalRecord, ScanStopsAtLsnRegression) {
  // A second batch whose LSN goes backwards is corruption: the scan keeps
  // the first batch and flags the log torn.
  std::string bytes = one_batch({record_for(5, RecordKind::kHeartbeat, 1)});
  const std::size_t clean = bytes.size();
  bytes += one_batch({record_for(4, RecordKind::kHeartbeat, 1)});

  const ScanResult scanned = scan(bytes);
  EXPECT_TRUE(scanned.torn);
  EXPECT_EQ(scanned.valid_bytes, clean);
  EXPECT_EQ(scanned.last_lsn, 5u);
  ASSERT_EQ(scanned.records.size(), 1u);
}

// ---- group-commit batching boundaries ----

TEST(ManagerJournal, BatchFlushesWhenMaxRecordsReached) {
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  MemoryBackend backend;
  JournalOptions options;
  options.max_batch_records = 3;
  options.group_commit_interval = msec(20.0);
  ManagerJournal journal(backend, &scheduler, options);

  const net::NodeStatus status = status_for(1);
  journal.on_heartbeat(status, scheduler.now());
  journal.on_heartbeat(status, scheduler.now());
  EXPECT_EQ(backend.durable_size(), 0u) << "batch below the cap stays open";
  EXPECT_EQ(journal.open_records(), 2u);

  journal.on_heartbeat(status, scheduler.now());
  EXPECT_GT(backend.durable_size(), 0u) << "cap reached: batch must flush";
  EXPECT_EQ(journal.committed_lsn(), 3u);
  EXPECT_EQ(journal.open_records(), 0u);
  EXPECT_EQ(journal.stats().batches, 1u);
}

TEST(ManagerJournal, DeferredGroupCommitFlushesAfterInterval) {
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  MemoryBackend backend;
  JournalOptions options;
  options.max_batch_records = 64;
  options.group_commit_interval = msec(20.0);
  ManagerJournal journal(backend, &scheduler, options);

  journal.on_heartbeat(status_for(1), scheduler.now());
  journal.commit(scheduler.now());
  EXPECT_EQ(backend.durable_size(), 0u)
      << "commit() under a deferred interval must not flush inline";

  // A second commit inside the window rides the same pending flush.
  simulator.run_until(msec(5.0));
  journal.on_heartbeat(status_for(2), scheduler.now());
  journal.commit(scheduler.now());
  EXPECT_EQ(backend.durable_size(), 0u);

  simulator.run_until(msec(30.0));
  EXPECT_GT(backend.durable_size(), 0u);
  EXPECT_EQ(journal.committed_lsn(), 2u);
  EXPECT_EQ(journal.stats().batches, 1u)
      << "both commits must share one group-committed batch";

  const ScanResult scanned = [&] {
    std::string bytes;
    backend.read_all(bytes);
    return scan(bytes);
  }();
  EXPECT_EQ(scanned.records.size(), 2u);
  EXPECT_EQ(scanned.batches, 1u);
}

TEST(ManagerJournal, ZeroIntervalCommitsInline) {
  // Live mode: no scheduler, every commit() is a durability barrier.
  MemoryBackend backend;
  JournalOptions options;
  options.group_commit_interval = SimDuration{0};
  ManagerJournal journal(backend, nullptr, options);

  journal.on_register(status_for(3), msec(10.0), false);
  journal.commit(msec(10.0));
  EXPECT_EQ(journal.committed_lsn(), 1u);
  EXPECT_EQ(backend.durable_size(), backend.size());
  EXPECT_GT(backend.durable_size(), 0u);

  journal.on_leave(NodeId{3}, msec(20.0));
  journal.commit(msec(20.0));
  EXPECT_EQ(journal.committed_lsn(), 2u);
  EXPECT_EQ(journal.stats().batches, 2u);
}

TEST(ManagerJournal, FlushNowDrainsOpenBatch) {
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  MemoryBackend backend;
  ManagerJournal journal(backend, &scheduler);

  journal.on_heartbeat(status_for(1), scheduler.now());
  journal.commit(scheduler.now());
  EXPECT_EQ(backend.durable_size(), 0u);
  journal.flush_now(scheduler.now());
  EXPECT_GT(backend.durable_size(), 0u);
  EXPECT_EQ(journal.committed_lsn(), 1u);
  // Nothing staged: a second flush_now is a no-op.
  const std::size_t durable = backend.durable_size();
  journal.flush_now(scheduler.now());
  EXPECT_EQ(backend.durable_size(), durable);
}

// ---- torn-write truncation and recovery ----

TEST(JournalRecovery, TornTailTruncatesToCleanPrefixAtEveryCut) {
  const std::string b1 = one_batch({record_for(1, RecordKind::kRegister, 1),
                                    record_for(2, RecordKind::kHeartbeat, 1)});
  const std::string b2 = one_batch({record_for(3, RecordKind::kRegister, 2)});
  const std::string b3 = one_batch({record_for(4, RecordKind::kHeartbeat, 2),
                                    record_for(5, RecordKind::kEpoch, 2)});
  const std::string clean = b1 + b2;

  // Cut the final frame at every possible byte offset: header-only, partial
  // payload, all the way to one byte short of complete.
  for (std::size_t cut = 1; cut < b3.size(); ++cut) {
    MemoryBackend backend;
    backend.append(clean);
    backend.append(b3.substr(0, cut));
    backend.flush();

    std::string bytes;
    backend.read_all(bytes);
    const ScanResult scanned = scan(bytes);
    EXPECT_TRUE(scanned.torn) << "cut at " << cut;
    EXPECT_EQ(scanned.valid_bytes, clean.size()) << "cut at " << cut;
    EXPECT_EQ(scanned.last_lsn, 3u) << "cut at " << cut;
    ASSERT_EQ(scanned.records.size(), 3u) << "cut at " << cut;

    // Recovery: truncate the torn tail, then appending works again.
    ASSERT_TRUE(backend.truncate(scanned.valid_bytes));
    backend.append(b3);
    backend.flush();
    backend.read_all(bytes);
    const ScanResult healed = scan(bytes);
    EXPECT_FALSE(healed.torn) << "cut at " << cut;
    EXPECT_EQ(healed.records.size(), 5u) << "cut at " << cut;
    EXPECT_EQ(healed.last_lsn, 5u) << "cut at " << cut;
    EXPECT_EQ(healed.batches, 3u) << "cut at " << cut;
  }
}

TEST(JournalRecovery, CorruptChecksumStopsScan) {
  std::string bytes = one_batch({record_for(1, RecordKind::kRegister, 1)});
  const std::size_t clean = bytes.size();
  bytes += one_batch({record_for(2, RecordKind::kHeartbeat, 1)});
  bytes.back() ^= 0x5A;  // flip a payload byte in the final frame

  const ScanResult scanned = scan(bytes);
  EXPECT_TRUE(scanned.torn);
  EXPECT_EQ(scanned.valid_bytes, clean);
  EXPECT_EQ(scanned.records.size(), 1u);
}

// ---- replay idempotence ----

TEST(RegistryImage, ReplayingPrefixTwiceEqualsOnce) {
  const std::vector<JournalRecord> records = {
      record_for(1, RecordKind::kRegister, 1),
      record_for(2, RecordKind::kRegister, 2),
      record_for(3, RecordKind::kHeartbeat, 1),
      record_for(4, RecordKind::kEpoch, 2),
      record_for(5, RecordKind::kLeave, 1),
      record_for(6, RecordKind::kHeartbeat, 2),
  };

  RegistryImage once;
  for (const JournalRecord& r : records) once.apply(r);

  RegistryImage twice;
  for (std::size_t i = 0; i < 4; ++i) twice.apply(records[i]);
  // Overlapping catch-up: the whole stream again, prefix included.
  for (const JournalRecord& r : records) twice.apply(r);

  EXPECT_EQ(once.applied_lsn(), twice.applied_lsn());
  EXPECT_EQ(once.size(), twice.size());
  EXPECT_EQ(once.canonical_dump(), twice.canonical_dump());
}

TEST(RegistryImage, ExpireAndLeaveRemoveButPhaseSurvives) {
  RegistryImage image;
  image.apply(record_for(1, RecordKind::kRegister, 4));
  image.apply(record_for(2, RecordKind::kEpoch, 4));  // epoch 2, overloaded
  image.apply(record_for(3, RecordKind::kExpire, 4));
  EXPECT_EQ(image.size(), 0u);
  ASSERT_EQ(image.phases().count(4u), 1u);
  EXPECT_EQ(image.phases().at(4u).epoch, 2u);

  // Rejoin after expiry: the phase table kept the monotone epoch.
  image.apply(record_for(4, RecordKind::kRegister, 4));
  EXPECT_EQ(image.size(), 1u);
  EXPECT_EQ(image.phases().at(4u).epoch, 2u);
}

// ---- file backend ----

TEST(FileBackend, PersistsAcrossReopenAndTruncates) {
  const std::string path = ::testing::TempDir() + "journal_file_test.edenlog";
  std::remove(path.c_str());
  const std::string b1 = one_batch({record_for(1, RecordKind::kRegister, 1)});
  const std::string b2 = one_batch({record_for(2, RecordKind::kHeartbeat, 1)});

  {
    FileBackend backend(path, /*fsync_on_flush=*/false);
    ASSERT_TRUE(backend.ok());
    EXPECT_EQ(backend.size(), 0u);
    ASSERT_TRUE(backend.append(b1));
    ASSERT_TRUE(backend.flush());
    ASSERT_TRUE(backend.append(b2));
    ASSERT_TRUE(backend.flush());
    EXPECT_EQ(backend.size(), b1.size() + b2.size());
  }
  {
    // Reopen resumes at the tail; contents match what was written.
    FileBackend backend(path, false);
    ASSERT_TRUE(backend.ok());
    EXPECT_EQ(backend.size(), b1.size() + b2.size());
    std::string bytes;
    ASSERT_TRUE(backend.read_all(bytes));
    EXPECT_EQ(bytes, b1 + b2);
    const ScanResult scanned = scan(bytes);
    EXPECT_EQ(scanned.records.size(), 2u);
    EXPECT_FALSE(scanned.torn);

    // Torn-tail recovery on disk: truncate to the first batch.
    ASSERT_TRUE(backend.truncate(b1.size()));
    ASSERT_TRUE(backend.read_all(bytes));
    EXPECT_EQ(bytes, b1);
    ASSERT_TRUE(backend.append(b2));
    ASSERT_TRUE(backend.flush());
  }
  {
    FileBackend backend(path, false);
    std::string bytes;
    ASSERT_TRUE(backend.read_all(bytes));
    EXPECT_EQ(bytes, b1 + b2);
  }
  std::remove(path.c_str());
}

// ---- CentralManager sink wiring ----

TEST(ManagerJournal, CentralManagerJournalsEveryMutationBeforeAck) {
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  MemoryBackend backend;
  JournalOptions options;
  options.group_commit_interval = SimDuration{0};  // inspect per-handler
  ManagerJournal journal(backend, &scheduler, options);
  manager::CentralManager manager(scheduler);
  manager.set_mutation_sink(&journal);

  manager.handle_register(status_for(1));
  manager.handle_heartbeat(status_for(1));
  manager.handle_heartbeat(status_for(2));  // unknown node: rejoin register
  manager.handle_deregister(NodeId{1});

  std::string bytes;
  backend.read_all(bytes);
  const ScanResult scanned = scan(bytes);
  ASSERT_EQ(scanned.records.size(), 4u);
  EXPECT_EQ(scanned.records[0].kind, RecordKind::kRegister);
  EXPECT_FALSE(scanned.records[0].rejoin);
  EXPECT_EQ(scanned.records[1].kind, RecordKind::kHeartbeat);
  EXPECT_EQ(scanned.records[2].kind, RecordKind::kRegister);
  EXPECT_TRUE(scanned.records[2].rejoin);
  EXPECT_EQ(scanned.records[3].kind, RecordKind::kLeave);
  EXPECT_EQ(scanned.last_lsn, 4u);
  // Every handler committed durably before returning.
  EXPECT_EQ(backend.durable_size(), backend.size());
}

// ---- standby tail + takeover ----

TEST(StandbyManager, TailsIncrementallyAndTakesOver) {
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  MemoryBackend backend;
  JournalOptions options;
  options.group_commit_interval = SimDuration{0};
  ManagerJournal journal(backend, &scheduler, options);
  manager::CentralManager primary(scheduler);
  primary.set_mutation_sink(&journal);

  manager::CentralManager standby_mgr(scheduler);
  StandbyManager standby(backend, standby_mgr);

  primary.handle_register(status_for(1));
  primary.handle_register(status_for(2));
  standby.tail();
  EXPECT_EQ(standby.image().applied_lsn(), 2u);
  EXPECT_EQ(standby.cursor(), backend.size());

  primary.handle_register(status_for(3));
  primary.handle_deregister(NodeId{2});

  const TakeoverResult result = standby.take_over(scheduler.now());
  EXPECT_EQ(result.recovered_lsn, journal.committed_lsn());
  EXPECT_EQ(result.live_entries, 2u);  // nodes 1 and 3
  EXPECT_EQ(result.truncated_bytes, 0u);
  EXPECT_EQ(standby_mgr.live_nodes(), 2u);

  // Replay-determinism witness: incremental tail + takeover catch-up must
  // equal a fresh one-shot replay of the surviving bytes.
  std::string bytes;
  backend.read_all(bytes);
  RegistryImage fresh;
  for (const JournalRecord& r : scan(bytes).records) fresh.apply(r);
  EXPECT_EQ(result.dump, fresh.canonical_dump());
}

TEST(StandbyManager, TakeoverTruncatesTornTail) {
  MemoryBackend backend;
  backend.append(one_batch({record_for(1, RecordKind::kRegister, 1)}));
  const std::size_t clean = backend.size();
  const std::string torn =
      one_batch({record_for(2, RecordKind::kRegister, 2)});
  backend.append(torn.substr(0, torn.size() / 2));
  backend.flush();

  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  manager::CentralManager standby_mgr(scheduler);
  StandbyManager standby(backend, standby_mgr);
  const TakeoverResult result = standby.take_over(scheduler.now());
  EXPECT_EQ(result.recovered_lsn, 1u);
  EXPECT_EQ(result.live_entries, 1u);
  EXPECT_EQ(result.truncated_bytes, torn.size() / 2);
  EXPECT_EQ(backend.size(), clean)
      << "the un-acked torn frame must be cut off the log";
}

TEST(StandbyManager, ChaosDropLastBatchLosesCommittedState) {
  // The planted selftest bug: replay that drops the final committed batch
  // must visibly diverge (fewer entries, lower LSN) — this is what the
  // journal-seqnum oracle and dump witness key on.
  MemoryBackend backend;
  backend.append(one_batch({record_for(1, RecordKind::kRegister, 1)}));
  backend.append(one_batch({record_for(2, RecordKind::kRegister, 2)}));
  backend.flush();

  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  manager::CentralManager honest_mgr(scheduler);
  StandbyManager honest(backend, honest_mgr);
  const TakeoverResult good = honest.take_over(scheduler.now());

  manager::CentralManager buggy_mgr(scheduler);
  StandbyManager buggy(backend, buggy_mgr,
                       StandbyOptions{.chaos_drop_last_batch = true});
  const TakeoverResult bad = buggy.take_over(scheduler.now());

  EXPECT_EQ(good.recovered_lsn, 2u);
  EXPECT_EQ(good.live_entries, 2u);
  EXPECT_LT(bad.recovered_lsn, good.recovered_lsn);
  EXPECT_EQ(bad.live_entries, 1u);
  EXPECT_NE(bad.dump, good.dump);
}

// ---- live runtime restart recovery ----

TEST(LiveManagerJournal, RestartRecoversRegistryFromFile) {
  const std::string path = ::testing::TempDir() + "live_restart.edenlog";
  std::remove(path.c_str());
  {
    rpc::LiveManager manager({}, sec(3.0));
    ASSERT_TRUE(manager.attach_journal(path, /*fsync=*/false));
    EXPECT_EQ(manager.journal_recovered_lsn(), 0u);
    manager.manager_unsafe().handle_register(status_for(1));
    manager.manager_unsafe().handle_register(status_for(2));
    manager.manager_unsafe().handle_deregister(NodeId{2});
    // Journal-before-ack: attach once, reject a second attach.
    EXPECT_FALSE(manager.attach_journal(path, false));
  }
  {
    rpc::LiveManager manager({}, sec(3.0));
    ASSERT_TRUE(manager.attach_journal(path, false));
    EXPECT_EQ(manager.journal_recovered_lsn(), 3u);
    // Node 1 was re-admitted with a fresh lease; node 2 left for good.
    EXPECT_EQ(manager.manager_unsafe().live_nodes(), 1u);
    EXPECT_NE(manager.manager_unsafe().registry().find(NodeId{1}), nullptr);
    // New mutations continue the LSN chain past the recovered point.
    manager.manager_unsafe().handle_register(status_for(5));
    EXPECT_GT(manager.journal()->committed_lsn(), 3u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eden::journal

// ---- malformed-repro rejection (eden_check --replay hardening) ----

namespace eden::check {
namespace {

std::string valid_repro_json() {
  ReproFile repro;
  repro.spec.seed = 42;
  repro.spec.standby = true;
  repro.spec.crash.enabled = true;
  repro.spec.crash.point = 2;
  repro.spec.crash.at_sec = 6.0;
  FuzzNode node;
  repro.spec.nodes.push_back(node);
  FuzzClient client;
  repro.spec.clients.push_back(client);
  return to_json(repro);
}

// Replace the first occurrence of `"key": <number>` with `"key": <value>`.
std::string with_field(std::string json, const std::string& key,
                       const std::string& value) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << key;
  std::size_t start = at + needle.size();
  while (start < json.size() && json[start] == ' ') ++start;
  std::size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != '\n') {
    ++end;
  }
  return json.replace(start, end - start, value);
}

TEST(ReproParse, RoundTripsV4FailoverFields) {
  const std::string json = valid_repro_json();
  const auto parsed = parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->spec.standby);
  EXPECT_TRUE(parsed->spec.crash.enabled);
  EXPECT_EQ(parsed->spec.crash.point, 2);
  EXPECT_EQ(to_json(*parsed), json) << "write -> parse -> write must be "
                                       "byte-identical";
}

TEST(ReproParse, RejectsMalformedAndNonFiniteInput) {
  const std::string json = valid_repro_json();
  // Overflowing double: strtod coerces "1e999" to inf; the semantic
  // validator must refuse it rather than running a nonsense horizon.
  EXPECT_FALSE(parse_json(with_field(json, "horizon_sec", "1e999")));
  EXPECT_FALSE(parse_json(with_field(json, "horizon_sec", "nan")));
  EXPECT_FALSE(parse_json(with_field(json, "horizon_sec", "-5")));
  EXPECT_FALSE(parse_json(with_field(json, "heartbeat_ttl_sec", "0")));
  EXPECT_FALSE(parse_json(with_field(json, "cooldown_sec", "-1")));
  EXPECT_FALSE(parse_json(with_field(json, "at_sec", "1e999")));
  EXPECT_FALSE(parse_json(with_field(json, "eden_repro", "99")));
  // Structural damage: truncation and token garbage.
  EXPECT_FALSE(parse_json(json.substr(0, json.size() / 2)));
  EXPECT_FALSE(parse_json("not json at all"));
  EXPECT_FALSE(parse_json(""));
  // The pristine text still parses (the mutations above were the cause).
  EXPECT_TRUE(parse_json(json).has_value());
}

}  // namespace
}  // namespace eden::check
