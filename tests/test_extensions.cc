// Tests for the extension features beyond the paper's core evaluation:
// strict QoS admission (§IV-D), multiple application server types
// (§III-B), heterogeneous per-frame costs, and reliability-aware manager
// scoring.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/scenario.h"
#include "manager/global_selection.h"

namespace eden {
namespace {

using harness::ClientSpot;
using harness::NodeSpec;
using harness::Scenario;
using harness::ScenarioConfig;

NodeSpec volunteer(const std::string& name, double lat, double lon,
                   int cores = 2, double frame_ms = 30.0) {
  NodeSpec spec;
  spec.name = name;
  spec.position = {lat, lon};
  spec.tier = net::AccessTier::kFiber;
  spec.cores = cores;
  spec.base_frame_ms = frame_ms;
  return spec;
}

// ---- strict QoS admission ----

TEST(QosAdmission, UserRejectedWhenNoNodeMeetsBound) {
  Scenario scenario(ScenarioConfig{.seed = 3}, harness::NetKind::kMatrix,
                    /*default_rtt_ms=*/40.0, 50.0, 0.0);
  scenario.add_node(volunteer("slow", 44.98, -93.26, 2, 80.0));
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(1.0);
  config.qos.max_lo_ms = 50.0;  // impossible: 40 RTT + 80 proc
  config.qos.strict = true;
  auto& user = scenario.add_edge_client(ClientSpot{.name = "u"}, config);
  user.start();
  scenario.run_until(sec(6.0));

  EXPECT_FALSE(user.current_node().has_value());
  EXPECT_GE(user.stats().qos_rejections, 2u);
  EXPECT_EQ(user.stats().frames_sent, 0u);
}

TEST(QosAdmission, UserAdmittedWhenBoundIsMet) {
  Scenario scenario(ScenarioConfig{.seed = 3}, harness::NetKind::kMatrix,
                    /*default_rtt_ms=*/10.0, 50.0, 0.0);
  scenario.add_node(volunteer("fast", 44.98, -93.26, 4, 20.0));
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.qos.max_lo_ms = 60.0;  // 10 RTT + 20 proc fits easily
  config.qos.strict = true;
  auto& user = scenario.add_edge_client(ClientSpot{.name = "u"}, config);
  user.start();
  scenario.run_until(sec(6.0));

  EXPECT_TRUE(user.current_node().has_value());
  EXPECT_EQ(user.stats().qos_rejections, 0u);
}

TEST(QosAdmission, DegradedNodeEvictsStrictUser) {
  // User admitted on an idle node; later overload pushes the what-if above
  // the QoS bound, so the strict user leaves the system.
  Scenario scenario(ScenarioConfig{.seed = 3}, harness::NetKind::kMatrix,
                    10.0, 50.0, 0.0);
  const auto idx = scenario.add_node(volunteer("n", 44.98, -93.26, 1, 30.0));
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.top_n = 1;
  config.probing_period = sec(1.0);
  config.qos.max_lo_ms = 70.0;
  config.qos.strict = true;
  config.send_frames = false;  // selection-only; load comes from elsewhere
  auto& user = scenario.add_edge_client(ClientSpot{.name = "u"}, config);
  user.start();
  scenario.run_until(sec(4.0));
  ASSERT_TRUE(user.current_node().has_value());

  // Host workload makes the node 4x slower: what-if ~120 ms > 70 ms bound.
  scenario.node(idx).set_background_load(0.75);
  scenario.run_until(sec(10.0));
  EXPECT_FALSE(user.current_node().has_value());
  EXPECT_GE(user.stats().qos_rejections, 1u);
}

// ---- multiple application server types ----

TEST(MultiApp, ManagerFiltersByAppType) {
  Scenario scenario(ScenarioConfig{.seed = 5}, harness::NetKind::kMatrix,
                    20.0, 50.0, 0.0);
  auto detector = volunteer("detector", 44.98, -93.26, 4, 20.0);
  detector.app_types = {"object-detection"};
  auto ocr = volunteer("ocr", 44.98, -93.27, 4, 20.0);
  ocr.app_types = {"ocr"};
  auto both = volunteer("both", 44.99, -93.26, 2, 40.0);
  both.app_types = {"object-detection", "ocr"};
  const auto detector_idx = scenario.add_node(detector);
  const auto ocr_idx = scenario.add_node(ocr);
  const auto both_idx = scenario.add_node(both);
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  net::DiscoveryRequest request;
  request.client = ClientId{99};
  request.geohash = scenario.geohash_of({44.9778, -93.2650});
  request.top_n = 5;
  request.app_type = "ocr";
  const auto response = scenario.central_manager().handle_discover(request);
  ASSERT_EQ(response.candidates.size(), 2u);
  for (const auto& candidate : response.candidates) {
    EXPECT_NE(candidate.node, scenario.node_id(detector_idx));
  }
  // Both qualifying nodes are present.
  bool saw_ocr = false;
  bool saw_both = false;
  for (const auto& candidate : response.candidates) {
    saw_ocr |= candidate.node == scenario.node_id(ocr_idx);
    saw_both |= candidate.node == scenario.node_id(both_idx);
  }
  EXPECT_TRUE(saw_ocr);
  EXPECT_TRUE(saw_both);
}

TEST(MultiApp, EmptyAppListServesEverything) {
  Scenario scenario(ScenarioConfig{.seed = 5}, harness::NetKind::kMatrix,
                    20.0, 50.0, 0.0);
  scenario.add_node(volunteer("universal", 44.98, -93.26));  // no app list
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));
  net::DiscoveryRequest request;
  request.client = ClientId{99};
  request.geohash = scenario.geohash_of({44.9778, -93.2650});
  request.top_n = 3;
  request.app_type = "anything";
  EXPECT_EQ(scenario.central_manager().handle_discover(request).candidates.size(),
            1u);
}

TEST(MultiApp, ClientLandsOnNodeServingItsApp) {
  Scenario scenario(ScenarioConfig{.seed = 5}, harness::NetKind::kMatrix,
                    20.0, 50.0, 0.0);
  auto wrong = volunteer("wrong-app", 44.98, -93.26, 8, 10.0);  // much faster
  wrong.app_types = {"other"};
  auto right = volunteer("right-app", 44.98, -93.27, 2, 40.0);
  right.app_types = {"ocr"};
  scenario.add_node(wrong);
  const auto right_idx = scenario.add_node(right);
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.app.app_type = "ocr";
  auto& user = scenario.add_edge_client(ClientSpot{.name = "u"}, config);
  user.start();
  scenario.run_until(sec(6.0));
  ASSERT_TRUE(user.current_node().has_value());
  EXPECT_EQ(*user.current_node(), scenario.node_id(right_idx));
}

TEST(MultiApp, FrameCostScalesProcessingTime) {
  Scenario scenario(ScenarioConfig{.seed = 5}, harness::NetKind::kMatrix,
                    10.0, 100.0, 0.0);
  scenario.add_node(volunteer("n", 44.98, -93.26, 4, 20.0));
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  auto run_user = [&](double cost) {
    workload::AppProfile app;
    app.frame_cost = cost;
    app.adaptive_rate = false;
    app.max_fps = 5.0;  // light load: no queueing
    auto& user = scenario.add_static_client(ClientSpot{.name = "u"}, app);
    user.start(scenario.node_id(0));
    const SimTime begin = scenario.simulator().now();
    scenario.run_until(begin + sec(10.0));
    const double mean =
        user.latency_series().window(begin + sec(2), begin + sec(10)).mean();
    user.stop();
    scenario.run_until(scenario.simulator().now() + sec(1.0));
    return mean;
  };

  const double cheap = run_user(1.0);
  const double heavy = run_user(3.0);
  // 20 ms vs 60 ms of service time, same network.
  EXPECT_NEAR(heavy - cheap, 40.0, 6.0);
}

TEST(MultiApp, CostFactorScalesLocalOverhead) {
  client::ProbeResult result;
  result.d_prop_ms = 10.0;
  result.process.whatif_ms = 30.0;
  result.cost_factor = 2.0;
  EXPECT_DOUBLE_EQ(result.lo(), 10.0 + 60.0);
}

// ---- reliability-aware manager scoring ----

TEST(Reliability, DisabledByDefault) {
  manager::GlobalSelector selector;
  net::DiscoveryRequest request;
  request.geohash = "9zvxvf";
  net::NodeStatus node;
  node.node = NodeId{1};
  node.geohash = "9zvxvf";
  EXPECT_DOUBLE_EQ(selector.score(request, node, 0.0),
                   selector.score(request, node, 1000.0));
}

TEST(Reliability, UptimeRaisesScoreWhenEnabled) {
  manager::GlobalPolicy policy;
  policy.w_reliability = 1.0;
  policy.reliability_halflife_sec = 60.0;
  manager::GlobalSelector selector(policy);
  net::DiscoveryRequest request;
  request.geohash = "9zvxvf";
  net::NodeStatus node;
  node.node = NodeId{1};
  node.geohash = "9zvxvf";
  const double young = selector.score(request, node, 5.0);
  const double old = selector.score(request, node, 600.0);
  EXPECT_GT(old, young);
  // Half-life semantics: at 60 s uptime the bonus is half the weight.
  EXPECT_NEAR(selector.score(request, node, 60.0) -
                  selector.score(request, node, 0.0),
              0.5, 1e-9);
}

TEST(Reliability, SelectPrefersLongLivedNodes) {
  sim::Simulator simulator;
  sim::SimScheduler clock(simulator);
  manager::GlobalPolicy policy;
  policy.w_reliability = 2.0;
  manager::CentralManager manager(clock, policy);

  net::NodeStatus veteran;
  veteran.node = NodeId{1};
  veteran.geohash = "9zvxvf";
  net::NodeStatus rookie = veteran;
  rookie.node = NodeId{2};

  manager.handle_register(veteran);
  simulator.run_until(sec(120.0));
  manager.handle_register(rookie);
  // Keep both fresh.
  manager.handle_heartbeat(veteran);
  manager.handle_heartbeat(rookie);

  net::DiscoveryRequest request;
  request.client = ClientId{9};
  request.geohash = "9zvxvf";
  request.top_n = 2;
  const auto response = manager.handle_discover(request);
  ASSERT_EQ(response.candidates.size(), 2u);
  EXPECT_EQ(response.candidates[0].node, NodeId{1});
}

}  // namespace
}  // namespace eden
