// Unit tests for the simulated multi-core frame executor: queueing,
// contention, burstable throttling, background load, reset semantics.
#include "node/executor.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/simulator.h"

namespace eden::node {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
  sim::SimScheduler scheduler_{simulator_};

  ExecutorConfig base_config(int cores, double frame_ms) {
    ExecutorConfig config;
    config.cores = cores;
    config.base_frame_ms = frame_ms;
    config.contention_alpha = 0.0;  // isolate queueing unless tested
    return config;
  }
};

TEST_F(ExecutorTest, SingleJobTakesBaseTime) {
  Executor exec(scheduler_, base_config(1, 30.0));
  double proc = -1;
  exec.submit(1.0, [&](double ms) { proc = ms; });
  simulator_.run_all();
  EXPECT_NEAR(proc, 30.0, 1e-6);
  EXPECT_EQ(exec.completed(), 1u);
}

TEST_F(ExecutorTest, CostScalesServiceTime) {
  Executor exec(scheduler_, base_config(1, 30.0));
  double proc = -1;
  exec.submit(0.5, [&](double ms) { proc = ms; });
  simulator_.run_all();
  EXPECT_NEAR(proc, 15.0, 1e-6);
}

TEST_F(ExecutorTest, SecondJobQueuesBehindFirstOnOneCore) {
  Executor exec(scheduler_, base_config(1, 30.0));
  std::vector<double> times;
  exec.submit(1.0, [&](double ms) { times.push_back(ms); });
  exec.submit(1.0, [&](double ms) { times.push_back(ms); });
  EXPECT_EQ(exec.busy(), 1);
  EXPECT_EQ(exec.queued(), 1);
  simulator_.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 30.0, 1e-6);
  EXPECT_NEAR(times[1], 60.0, 1e-6);  // 30 queue + 30 service
}

TEST_F(ExecutorTest, TwoCoresRunInParallel) {
  Executor exec(scheduler_, base_config(2, 30.0));
  std::vector<double> times;
  exec.submit(1.0, [&](double ms) { times.push_back(ms); });
  exec.submit(1.0, [&](double ms) { times.push_back(ms); });
  EXPECT_EQ(exec.busy(), 2);
  EXPECT_EQ(exec.queued(), 0);
  simulator_.run_all();
  EXPECT_NEAR(times[0], 30.0, 1e-6);
  EXPECT_NEAR(times[1], 30.0, 1e-6);
}

TEST_F(ExecutorTest, ContentionStretchesConcurrentJobs) {
  auto config = base_config(4, 30.0);
  config.contention_alpha = 0.1;
  Executor exec(scheduler_, config);
  std::vector<double> times;
  exec.submit(1.0, [&](double ms) { times.push_back(ms); });  // 1 busy
  exec.submit(1.0, [&](double ms) { times.push_back(ms); });  // 2 busy
  exec.submit(1.0, [&](double ms) { times.push_back(ms); });  // 3 busy
  simulator_.run_all();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 30.0, 1e-6);
  EXPECT_NEAR(times[1], 33.0, 1e-6);  // x(1 + 0.1)
  EXPECT_NEAR(times[2], 36.0, 1e-6);  // x(1 + 0.2)
}

TEST_F(ExecutorTest, BackgroundLoadSlowsService) {
  auto config = base_config(1, 30.0);
  config.background_load = 0.5;
  Executor exec(scheduler_, config);
  double proc = -1;
  exec.submit(1.0, [&](double ms) { proc = ms; });
  simulator_.run_all();
  EXPECT_NEAR(proc, 60.0, 1e-6);
}

TEST_F(ExecutorTest, SetBackgroundLoadTakesEffectOnNextJob) {
  Executor exec(scheduler_, base_config(1, 30.0));
  exec.set_background_load(0.25);
  double proc = -1;
  exec.submit(1.0, [&](double ms) { proc = ms; });
  simulator_.run_all();
  EXPECT_NEAR(proc, 40.0, 1e-6);
}

TEST_F(ExecutorTest, BurstableThrottlesAfterCreditsDrain) {
  auto config = base_config(1, 50.0);
  config.burstable = true;
  config.burst_baseline = 0.25;
  config.initial_credits_core_sec = 1.0;  // ~1 core-second of burst
  Executor exec(scheduler_, config);

  // Saturate the core: credits drain at (1 - 0.25) per busy second, so
  // after ~1.3 s of sustained work the executor throttles to 4x slower.
  std::vector<double> service_times;
  SimTime last_end = 0;
  std::function<void()> chain = [&] {
    const SimTime start = simulator_.now();
    exec.submit(1.0, [&, start](double) {
      service_times.push_back(to_ms(simulator_.now() - start));
      last_end = simulator_.now();
      if (service_times.size() < 60) chain();
    });
  };
  chain();
  simulator_.run_all();
  ASSERT_EQ(service_times.size(), 60u);
  EXPECT_NEAR(service_times.front(), 50.0, 1e-6);
  EXPECT_NEAR(service_times.back(), 200.0, 1e-6);  // 50 / 0.25
  EXPECT_TRUE(exec.throttled());
}

TEST_F(ExecutorTest, IdleBurstableEarnsCreditsBack) {
  auto config = base_config(1, 50.0);
  config.burstable = true;
  config.burst_baseline = 0.5;
  config.initial_credits_core_sec = 0.5;
  Executor exec(scheduler_, config);
  // Drain credits.
  for (int i = 0; i < 30; ++i) {
    exec.submit(1.0, [](double) {});
  }
  simulator_.run_all();
  EXPECT_TRUE(exec.throttled());
  // Idle for a while: credits regenerate at the baseline rate.
  simulator_.run_until(simulator_.now() + sec(2.0));
  exec.submit(1.0, [](double) {});
  EXPECT_FALSE(exec.throttled());
  simulator_.run_all();
}

TEST_F(ExecutorTest, ResetDropsQueuedAndSuppressesInflight) {
  Executor exec(scheduler_, base_config(1, 30.0));
  int completions = 0;
  exec.submit(1.0, [&](double) { ++completions; });
  exec.submit(1.0, [&](double) { ++completions; });
  exec.reset();
  EXPECT_EQ(exec.busy(), 0);
  EXPECT_EQ(exec.queued(), 0);
  simulator_.run_all();
  EXPECT_EQ(completions, 0);
}

TEST_F(ExecutorTest, WorksAfterReset) {
  Executor exec(scheduler_, base_config(1, 30.0));
  exec.submit(1.0, [](double) {});
  exec.reset();
  double proc = -1;
  exec.submit(1.0, [&](double ms) { proc = ms; });
  simulator_.run_all();
  EXPECT_NEAR(proc, 30.0, 1e-6);
}

TEST_F(ExecutorTest, UtilizationRisesUnderLoadAndDecays) {
  Executor exec(scheduler_, base_config(1, 10.0));
  EXPECT_DOUBLE_EQ(exec.utilization(), 0.0);
  // Keep the core busy for 3 seconds.
  int remaining = 300;
  std::function<void()> chain = [&] {
    exec.submit(1.0, [&](double) {
      if (--remaining > 0) chain();
    });
  };
  chain();
  simulator_.run_all();
  EXPECT_GT(exec.utilization(), 0.6);
  // Idle decays the EMA (needs an accounting touch to observe).
  simulator_.run_until(simulator_.now() + sec(10.0));
  exec.set_background_load(0.0);  // forces accounting
  EXPECT_LT(exec.utilization(), 0.1);
}

TEST_F(ExecutorTest, FifoOrderPreserved) {
  Executor exec(scheduler_, base_config(1, 5.0));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    exec.submit(1.0, [&order, i](double) { order.push_back(i); });
  }
  simulator_.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Property sweep: with k users at fixed rate on c cores, average in-node
// time is non-decreasing in k.
class ExecutorLoadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorLoadSweep, LatencyMonotoneInLoad) {
  const int cores = GetParam();
  double previous_avg = 0;
  for (int jobs : {1, 4, 16, 64}) {
    sim::Simulator simulator;
    sim::SimScheduler scheduler(simulator);
    ExecutorConfig config;
    config.cores = cores;
    config.base_frame_ms = 20.0;
    Executor exec(scheduler, config);
    double total = 0;
    int done = 0;
    for (int i = 0; i < jobs; ++i) {
      exec.submit(1.0, [&](double ms) {
        total += ms;
        ++done;
      });
    }
    simulator.run_all();
    ASSERT_EQ(done, jobs);
    const double avg = total / jobs;
    EXPECT_GE(avg + 1e-9, previous_avg);
    previous_avg = avg;
  }
}

INSTANTIATE_TEST_SUITE_P(Cores, ExecutorLoadSweep, ::testing::Values(1, 2, 4, 8));

TEST_F(ExecutorTest, QueueFullShedFiresCompletionWithShedSentinel) {
  ExecutorConfig config = base_config(1, 30.0);
  config.max_queue = 2;
  Executor exec(scheduler_, config);
  std::vector<double> results;
  for (int i = 0; i < 5; ++i) {
    exec.submit(1.0, [&](double ms) { results.push_back(ms); });
  }
  // 1 running + 2 queued admitted; the other 2 are shed synchronously.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], Executor::kShedMs);
  EXPECT_EQ(results[1], Executor::kShedMs);
  EXPECT_EQ(exec.dropped(), 2u);
  simulator_.run_all();
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 2; i < results.size(); ++i) {
    EXPECT_GE(results[i], 30.0 - 1e-6);
  }
  EXPECT_EQ(exec.completed(), 3u);
  EXPECT_EQ(exec.completed() + exec.dropped(), 5u);
}

TEST_F(ExecutorTest, ThrottleShedTightensAdmissionToBaselineShare) {
  ExecutorConfig config = base_config(1, 10.0);
  config.max_queue = 10;
  config.burstable = true;
  config.burst_baseline = 0.4;
  config.initial_credits_core_sec = 0.05;  // throttles almost immediately
  config.shed_on_throttle = true;
  Executor exec(scheduler_, config);
  // Burn the credits with a long job and submit the burst while it still
  // runs — an idle executor earns its baseline back and un-throttles.
  exec.submit(100.0, [](double) {});
  simulator_.run_until(simulator_.now() + msec(500.0));
  exec.set_background_load(0.0);  // force a credit-accounting pass
  ASSERT_TRUE(exec.throttled());
  int admitted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    exec.submit(1.0, [&](double ms) { (ms >= 0 ? admitted : shed) += 1; });
  }
  // Throttled admission limit is max_queue * burst_baseline = 4, not 10.
  EXPECT_EQ(exec.queued(), 4);
  EXPECT_EQ(shed, 6);
  simulator_.run_all();
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 6);
}

TEST_F(ExecutorTest, ThrottleShedOffKeepsFullQueueDepth) {
  ExecutorConfig config = base_config(1, 10.0);
  config.max_queue = 10;
  config.burstable = true;
  config.burst_baseline = 0.4;
  config.initial_credits_core_sec = 0.05;
  config.shed_on_throttle = false;  // default: admission unchanged
  Executor exec(scheduler_, config);
  exec.submit(100.0, [](double) {});
  simulator_.run_until(simulator_.now() + msec(500.0));
  exec.set_background_load(0.0);  // force a credit-accounting pass
  ASSERT_TRUE(exec.throttled());
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    exec.submit(1.0, [&](double ms) { shed += (ms < 0) ? 1 : 0; });
  }
  EXPECT_EQ(exec.queued(), 10);
  EXPECT_EQ(shed, 0);
  simulator_.run_all();
}

}  // namespace
}  // namespace eden::node
