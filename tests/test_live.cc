// End-to-end test of the live TCP runtime: a real manager, real edge
// nodes and a real client exchanging the full EDEN protocol over
// localhost sockets — the same state machines the simulator drives.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "rpc/live_runtime.h"

namespace eden::rpc {
namespace {

node::EdgeNodeConfig node_config(std::uint32_t id, int cores, double frame_ms) {
  node::EdgeNodeConfig config;
  config.id = NodeId{id};
  config.geohash = "9zvxvf";
  config.executor.cores = cores;
  config.executor.base_frame_ms = frame_ms;
  config.heartbeat_period = msec(200.0);
  return config;
}

TEST(LiveRuntime, FullSystemOverTcp) {
  LiveManager manager;
  ASSERT_TRUE(manager.start(0));

  LiveNode fast(node_config(1, 4, 5.0), manager.endpoint());
  LiveNode slow(node_config(2, 1, 40.0), manager.endpoint());
  ASSERT_TRUE(fast.start(0));
  ASSERT_TRUE(slow.start(0));

  // Give registrations a moment to land.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto live_nodes = run_on_loop(manager.loop(), [&] {
    return manager.manager_unsafe().live_nodes();
  });
  EXPECT_EQ(live_nodes, 2u);

  client::ClientConfig config;
  config.geohash = "9zvxvf";
  config.top_n = 2;
  config.probing_period = msec(400.0);
  config.keepalive_period = msec(200.0);
  config.app.max_fps = 20.0;
  LiveClient client(config, manager.endpoint());
  client.start();

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));

  const auto current = client.current_node();
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(*current, NodeId{1});  // 5 ms/frame beats 40 ms/frame

  const auto stats = client.stats();
  EXPECT_GT(stats.frames_ok, 10u);
  EXPECT_GT(stats.probes_sent, 0u);

  const auto latency = client.latency_window_ms();
  ASSERT_GT(latency.count(), 0u);
  // Localhost RTT + ~5 ms processing: comfortably under 60 ms.
  EXPECT_LT(latency.mean(), 60.0);

  const auto fast_stats = fast.stats();
  EXPECT_GT(fast_stats.frames_processed, 10u);

  client.stop();
  fast.stop();
  slow.stop();
  manager.stop();
}

TEST(LiveRuntime, FailoverOverTcp) {
  LiveManager manager;
  ASSERT_TRUE(manager.start(0));

  auto primary = std::make_unique<LiveNode>(node_config(1, 4, 5.0),
                                            manager.endpoint());
  LiveNode backup(node_config(2, 2, 10.0), manager.endpoint());
  ASSERT_TRUE(primary->start(0));
  ASSERT_TRUE(backup.start(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  client::ClientConfig config;
  config.geohash = "9zvxvf";
  config.top_n = 2;
  config.probing_period = msec(300.0);
  config.keepalive_period = msec(100.0);
  LiveClient client(config, manager.endpoint());
  client.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  ASSERT_EQ(client.current_node(), NodeId{1});

  // Kill the primary without deregistering: the keepalive must notice and
  // the failure monitor must switch to the warm backup.
  primary->stop(/*graceful=*/false);
  primary.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));

  EXPECT_EQ(client.current_node(), NodeId{2});
  const auto stats = client.stats();
  EXPECT_GE(stats.failovers + stats.joins, 1u);

  client.stop();
  backup.stop();
  manager.stop();
}

TEST(LiveRuntime, NoPoolChunksLeakAcrossRuntimes) {
  // Drive real traffic through all three roles, then stop everything and
  // run the leak oracle: after closing every connection, zero pooled
  // buffer chunks may still be held by any runtime.
  LiveManager manager;
  ASSERT_TRUE(manager.start(0));
  LiveNode node_a(node_config(1, 4, 5.0), manager.endpoint());
  LiveNode node_b(node_config(2, 2, 10.0), manager.endpoint());
  ASSERT_TRUE(node_a.start(0));
  ASSERT_TRUE(node_b.start(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  client::ClientConfig config;
  config.geohash = "9zvxvf";
  config.top_n = 2;
  config.probing_period = msec(300.0);
  config.keepalive_period = msec(150.0);
  config.app.max_fps = 30.0;
  LiveClient client(config, manager.endpoint());
  client.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(800));

  // While running, pool occupancy is bounded and connections exist.
  const auto manager_stats = manager.pool_stats();
  EXPECT_GT(manager_stats.open_connections, 0u);
  ASSERT_GT(client.stats().frames_ok, 0u);

  client.stop();
  node_a.stop();
  node_b.stop();
  manager.stop();

  EXPECT_EQ(client.leaked_pool_chunks(), 0u);
  EXPECT_EQ(node_a.leaked_pool_chunks(), 0u);
  EXPECT_EQ(node_b.leaked_pool_chunks(), 0u);
  EXPECT_EQ(manager.leaked_pool_chunks(), 0u);
}

TEST(LiveRuntime, ManagerExpiresSilentNode) {
  LiveManager manager({}, /*heartbeat_ttl=*/msec(600.0));
  ASSERT_TRUE(manager.start(0));
  auto node = std::make_unique<LiveNode>(node_config(5, 1, 10.0),
                                         manager.endpoint());
  ASSERT_TRUE(node->start(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(run_on_loop(manager.loop(),
                        [&] { return manager.manager_unsafe().live_nodes(); }),
            1u);
  node->stop(/*graceful=*/false);
  node.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  EXPECT_EQ(run_on_loop(manager.loop(),
                        [&] { return manager.manager_unsafe().live_nodes(); }),
            0u);
  manager.stop();
}

}  // namespace
}  // namespace eden::rpc
