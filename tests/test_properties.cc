// Property-based suites over protocol invariants: join-storm
// serialization, executor work conservation, exactly-once RPC callbacks
// under random topologies and failures, client event-sequence sanity, and
// end-of-run attachment consistency under churn.
#include <gtest/gtest.h>

#include <unordered_set>

#include "churn/churn.h"
#include "harness/experiments.h"
#include "harness/scenario.h"

namespace eden {
namespace {

using harness::ClientSpot;
using harness::NodeSpec;
using harness::Scenario;
using harness::ScenarioConfig;

// ---- Algorithm 1: a storm of joins against one probed seqNum admits
// exactly one user per state change ----

class JoinStorm : public ::testing::TestWithParam<int> {};

TEST_P(JoinStorm, ExactlyOneWinnerPerSeq) {
  const int contenders = GetParam();
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  node::EdgeNodeConfig config;
  config.id = NodeId{1};
  config.executor.cores = 8;
  config.executor.base_frame_ms = 10.0;
  node::EdgeNode node(scheduler, config, nullptr);
  node.start();
  simulator.run_until(sec(1.0));

  const auto probe = node.handle_process_probe();
  std::unordered_set<std::uint32_t> admitted;
  int accepted = 0;
  for (int i = 0; i < contenders; ++i) {
    const std::uint32_t client = 100 + static_cast<std::uint32_t>(i);
    const auto response =
        node.handle_join(net::JoinRequest{ClientId{client}, probe.seq_num, 20.0});
    if (response.accepted) {
      ++accepted;
      admitted.insert(client);
    }
  }
  EXPECT_EQ(accepted, 1);
  EXPECT_EQ(node.attached_users(), 1);

  // Losers re-probe and retry (Algorithm 2 line 14): exactly one more is
  // admitted per state change, so everyone gets in after N-1 extra rounds.
  int rounds = 0;
  while (node.attached_users() < contenders && rounds < contenders * 2) {
    const auto fresh = node.handle_process_probe();
    int admitted_this_round = 0;
    for (int i = 0; i < contenders; ++i) {
      const std::uint32_t client = 100 + static_cast<std::uint32_t>(i);
      if (admitted.count(client)) continue;
      if (node.handle_join(net::JoinRequest{ClientId{client}, fresh.seq_num, 20.0})
              .accepted) {
        admitted.insert(client);
        ++admitted_this_round;
      }
    }
    EXPECT_LE(admitted_this_round, 1);
    ++rounds;
  }
  EXPECT_EQ(node.attached_users(), contenders);
  EXPECT_EQ(rounds, contenders - 1);
}

INSTANTIATE_TEST_SUITE_P(Storms, JoinStorm, ::testing::Range(2, 18));

// ---- executor work conservation: submitted = completed + dropped +
// in-flight/queued, under random loads ----

class ExecutorConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorConservation, NothingLostNothingInvented) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  node::ExecutorConfig config;
  config.cores = static_cast<int>(rng.uniform_int(1, 4));
  config.base_frame_ms = rng.uniform(5, 40);
  config.max_queue = static_cast<int>(rng.uniform_int(1, 8));
  node::Executor executor(scheduler, config);

  const int submitted = 200;
  int completions = 0;
  int drops = 0;
  for (int i = 0; i < submitted; ++i) {
    simulator.schedule_at(
        static_cast<SimTime>(rng.uniform(0, 2'000'000)),
        [&executor, &completions, &drops, &rng] {
          executor.submit(rng.uniform(0.5, 2.0),
                          [&completions, &drops](double ms) {
                            if (ms >= 0) {
                              ++completions;
                            } else {
                              ++drops;
                            }
                          });
        });
  }
  simulator.run_all();
  EXPECT_EQ(static_cast<std::uint64_t>(completions), executor.completed());
  EXPECT_EQ(static_cast<std::uint64_t>(drops), executor.dropped());
  EXPECT_EQ(executor.completed() + executor.dropped(),
            static_cast<std::uint64_t>(submitted));
  EXPECT_EQ(executor.busy(), 0);
  EXPECT_EQ(executor.queued(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorConservation,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{25}));

// ---- SimNetwork rpc: callbacks exactly once, under random host deaths ----

class RpcExactlyOnce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpcExactlyOnce, EveryCallCompletesOnce) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  net::MatrixNetwork model(rng.uniform(5, 50), 100.0, 0.1);
  net::HostTable hosts;
  net::SimNetwork fabric(simulator, model, hosts, rng.fork("fabric"));

  const int host_count = 6;
  for (std::uint32_t h = 0; h < host_count; ++h) {
    hosts.set_alive(HostId{h}, true);
  }
  // Random deaths over the run.
  for (int k = 0; k < 3; ++k) {
    const HostId victim{static_cast<std::uint32_t>(rng.uniform_int(1, 5))};
    simulator.schedule_at(static_cast<SimTime>(rng.uniform(0, 500'000)),
                          [&hosts, victim] { hosts.set_alive(victim, false); });
  }

  const int calls = 300;
  std::vector<int> completions(calls, 0);
  for (int i = 0; i < calls; ++i) {
    const HostId to{static_cast<std::uint32_t>(rng.uniform_int(1, 5))};
    simulator.schedule_at(
        static_cast<SimTime>(rng.uniform(0, 1'000'000)),
        [&fabric, &completions, i, to] {
          fabric.rpc<int>(
              HostId{0}, to, 100, 100, msec(200), [] { return 1; },
              [&completions, i](std::optional<int>) { ++completions[i]; });
        });
  }
  simulator.run_all();
  for (int i = 0; i < calls; ++i) {
    EXPECT_EQ(completions[i], 1) << "call " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcExactlyOnce,
                         ::testing::Range(std::uint64_t{100}, std::uint64_t{124}));

// ---- client event stream: first event is a join; switches/failovers
// always follow an attachment; node ids are valid ----

TEST(ClientEvents, SequenceIsSane) {
  Scenario scenario(ScenarioConfig{.seed = 31}, harness::NetKind::kGeo);
  NodeSpec spec;
  spec.name = "a";
  spec.cores = 4;
  spec.base_frame_ms = 20.0;
  spec.position = {44.98, -93.26};
  const auto a = scenario.add_node(spec);
  spec.name = "b";
  spec.position = {44.99, -93.25};
  scenario.add_node(spec);
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(1.0);
  auto& user = scenario.add_edge_client(ClientSpot{.name = "u"}, config);
  std::vector<client::ClientEvent> events;
  user.set_event_hook(
      [&events](const client::ClientEvent& e) { events.push_back(e); });
  user.start();
  scenario.run_until(sec(6.0));
  scenario.stop_node(a, false);  // may or may not be the current node
  scenario.run_until(sec(12.0));

  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, client::ClientEvent::Kind::kJoined);
  bool attached = false;
  SimTime prev = 0;
  for (const auto& event : events) {
    EXPECT_GE(event.at, prev);  // chronological
    prev = event.at;
    switch (event.kind) {
      case client::ClientEvent::Kind::kJoined:
        EXPECT_TRUE(event.node.valid());
        attached = true;
        break;
      case client::ClientEvent::Kind::kSwitched:
      case client::ClientEvent::Kind::kFailover:
        EXPECT_TRUE(attached);  // can only move if we were somewhere
        EXPECT_TRUE(event.node.valid());
        break;
      case client::ClientEvent::Kind::kHardFailure:
        attached = false;
        break;
      case client::ClientEvent::Kind::kQosRejected:
        break;
    }
  }
  EXPECT_STREQ(client::to_string(client::ClientEvent::Kind::kFailover),
               "failover");
}

// ---- churn end-state consistency: every client's current node is alive
// and actually has the client attached ----

class ChurnConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnConsistency, AttachmentsConsistentAtEnd) {
  harness::ScenarioConfig config;
  config.seed = GetParam();
  Scenario scenario(config, harness::NetKind::kMatrix, 25.0, 50.0, 0.05);

  churn::ChurnConfig churn_config;
  churn_config.horizon = sec(60.0);
  churn_config.initial_nodes = 4;
  churn_config.max_nodes = 12;
  Rng churn_rng = Rng(config.seed).fork("churn");
  const auto schedule = churn::generate_churn(churn_config, churn_rng);
  const auto specs =
      harness::churn_node_specs(static_cast<int>(schedule.total_nodes));
  for (const auto& spec : specs) scenario.add_node(spec);
  for (const auto& event : schedule.events) {
    if (event.kind == churn::ChurnEventKind::kJoin) {
      scenario.schedule_node_start(event.node_index, event.at);
    } else {
      scenario.schedule_node_stop(event.node_index, event.at, false);
    }
  }

  std::vector<client::EdgeClient*> clients;
  for (int i = 0; i < 5; ++i) {
    client::ClientConfig client_config;
    client_config.top_n = 3;
    client_config.probing_period = sec(2.0);
    auto& c = scenario.add_edge_client(
        ClientSpot{"u" + std::to_string(i)}, client_config);
    scenario.simulator().schedule_at(msec(300.0), [&c] { c.start(); });
    clients.push_back(&c);
  }
  // Churn stops at 60 s; run a settle window past the horizon so failure
  // detection and in-flight moves triggered by the last stops complete —
  // otherwise the end-state check races the protocol.
  scenario.run_until(sec(66.0));

  for (const auto* c : clients) {
    if (!c->current_node()) continue;
    const auto index = scenario.node_index(*c->current_node());
    ASSERT_TRUE(index.has_value());
    EXPECT_TRUE(scenario.node(*index).running())
        << "client attached to a dead node";
  }
  // Node-side attachment sets only contain live clients we know about.
  int total_attached = 0;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    if (scenario.node(i).running()) {
      total_attached += scenario.node(i).attached_users();
    }
  }
  EXPECT_LE(total_attached, 5 + 2);  // small slack for in-flight moves
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnConsistency,
                         ::testing::Values(2030, 2042, 2047));

}  // namespace
}  // namespace eden
