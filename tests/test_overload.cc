// Overload-aware elasticity (load-feedback phase switching) tests:
// manager-side rejoin detection and overload-set hysteresis, node-side
// seqNum safety across rejoins, client-side re-discover hints and dropped
// frame accounting, and bitwise determinism of the feedback loop across
// ParallelRunner thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "check/fuzzer.h"
#include "harness/parallel_runner.h"
#include "harness/scenario.h"
#include "manager/central_manager.h"
#include "net/api.h"
#include "node/edge_node.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "sim/simulator.h"

namespace eden {
namespace {

net::NodeStatus make_status(std::uint32_t id, std::string geohash = "9zvxvf",
                            int cores = 4, double frame_ms = 30.0) {
  net::NodeStatus status;
  status.node = NodeId{id};
  status.geohash = std::move(geohash);
  status.cores = cores;
  status.base_frame_ms = frame_ms;
  status.burst_credits = 100.0;  // comfortably above min_burst_credits
  return status;
}

manager::OverloadPolicy enabled_policy() {
  manager::OverloadPolicy policy;
  policy.enabled = true;
  return policy;
}

// ---- rejoin detection (satellite 1: no silent resurrection) ----

class ManagerClockTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
  sim::SimScheduler clock_{simulator_};
};

TEST_F(ManagerClockTest, HeartbeatAfterTtlExpiryIsExplicitRejoin) {
  manager::CentralManager manager(clock_, {}, sec(3.0));
  obs::TraceRecorder trace;
  manager.set_observability(&trace, nullptr);
  manager.handle_register(make_status(1));
  simulator_.run_until(sec(2.0));
  EXPECT_FALSE(manager.handle_heartbeat(make_status(1)).rejoined);
  EXPECT_EQ(manager.stats().rejoins, 0u);

  // The node goes silent past the TTL; the next heartbeat must be treated
  // as a re-registration (traced expiry + rejoin), not a silent refresh.
  simulator_.run_until(sec(9.0));
  const net::HeartbeatAck ack = manager.handle_heartbeat(make_status(1));
  EXPECT_TRUE(ack.rejoined);
  EXPECT_EQ(manager.stats().rejoins, 1u);
  EXPECT_EQ(trace.count(obs::EventKind::kNodeExpire), 1u);
  EXPECT_EQ(trace.count(obs::EventKind::kNodeRejoin), 1u);
  EXPECT_EQ(manager.live_nodes(), 1u);  // and the node is live again
}

TEST_F(ManagerClockTest, NeverRegisteredHeartbeatIsRejoin) {
  manager::CentralManager manager(clock_, {}, sec(3.0));
  // Registration lost in a fault window: the first thing the manager ever
  // hears is a heartbeat. It must admit the node, but visibly.
  EXPECT_TRUE(manager.handle_heartbeat(make_status(7)).rejoined);
  EXPECT_EQ(manager.stats().rejoins, 1u);
  EXPECT_EQ(manager.live_nodes(), 1u);
}

TEST_F(ManagerClockTest, HeartbeatAtExactTtlBoundaryIsNotRejoin) {
  manager::CentralManager manager(clock_, {}, sec(3.0));
  manager.handle_register(make_status(1));
  // Registry expiry requires age strictly greater than the TTL, so a
  // heartbeat landing exactly at the boundary refreshes the live entry.
  simulator_.run_until(sec(3.0));
  EXPECT_FALSE(manager.handle_heartbeat(make_status(1)).rejoined);
  EXPECT_EQ(manager.stats().rejoins, 0u);
}

// The node reacts to a rejoin ack by bumping its seqNum, so no pre-gap
// seqNum can admit a client after the manager forgot the node.
class ScriptedLink final : public net::ManagerLink {
 public:
  void register_node(const net::NodeStatus&) override {}
  void heartbeat(const net::NodeStatus&) override {}
  void heartbeat_feedback(const net::NodeStatus&,
                          net::Done<std::optional<net::HeartbeatAck>> done)
      override {
    ++heartbeats;
    net::HeartbeatAck ack;
    ack.rejoined = rejoin_next;
    ack.degraded = degraded_next;
    ack.phase_epoch = epoch_next;
    rejoin_next = false;
    done(ack);
  }
  void deregister(NodeId) override {}

  int heartbeats{0};
  bool rejoin_next{false};
  bool degraded_next{false};
  std::uint64_t epoch_next{0};
};

TEST(EdgeNodeRejoin, RejoinAckBumpsSeqNumAndNeverReusesIt) {
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  ScriptedLink link;
  node::EdgeNodeConfig config;
  config.id = NodeId{1};
  config.geohash = "9zvxvf";
  config.load_feedback = true;
  node::EdgeNode node(scheduler, config, &link);
  node.start();
  simulator.run_until(sec(2.5));  // a couple of ordinary heartbeats
  const std::uint64_t before = node.seq_num();
  EXPECT_EQ(node.stats().rejoins, 0u);

  link.rejoin_next = true;
  simulator.run_until(sec(3.5));  // next heartbeat carries the rejoin ack
  EXPECT_EQ(node.stats().rejoins, 1u);
  EXPECT_GT(node.seq_num(), before);  // pre-gap seqNums are invalid now
}

TEST(EdgeNodeRejoin, FeedbackOffNeverLearnsPhase) {
  sim::Simulator simulator;
  sim::SimScheduler scheduler(simulator);
  ScriptedLink link;
  link.degraded_next = true;
  link.epoch_next = 9;
  node::EdgeNodeConfig config;
  config.id = NodeId{1};
  config.geohash = "9zvxvf";
  config.load_feedback = false;  // legacy one-way heartbeats
  node::EdgeNode node(scheduler, config, &link);
  node.start();
  simulator.run_until(sec(5.0));
  EXPECT_EQ(link.heartbeats, 0);  // the feedback rpc is never used
  EXPECT_FALSE(node.degraded());
  EXPECT_EQ(node.phase_epoch(), 0u);
}

// ---- overload-set hysteresis ----

net::NodeStatus loaded_status(std::uint32_t id, double queue_per_core,
                              double p95_factor = 0.0) {
  net::NodeStatus status = make_status(id);
  status.queue_depth = static_cast<int>(queue_per_core * status.cores);
  status.p95_proc_ms = p95_factor * status.base_frame_ms;
  return status;
}

TEST_F(ManagerClockTest, EnterThresholdBoundaryIsInclusive) {
  manager::CentralManager manager(clock_, {}, sec(30.0));
  manager.set_overload_policy(enabled_policy());
  manager.handle_register(make_status(1));
  // Exactly at enter_queue_per_core (3.0): >= trips the entry.
  EXPECT_TRUE(manager.handle_heartbeat(loaded_status(1, 3.0)).degraded);
  EXPECT_TRUE(manager.overloaded(NodeId{1}));
  EXPECT_EQ(manager.stats().overload_enters, 1u);
}

TEST_F(ManagerClockTest, JustBelowEnterThresholdStaysClear) {
  manager::CentralManager manager(clock_, {}, sec(30.0));
  manager.set_overload_policy(enabled_policy());
  manager.handle_register(make_status(1));
  EXPECT_FALSE(manager.handle_heartbeat(loaded_status(1, 2.75)).degraded);
  EXPECT_FALSE(manager.overloaded(NodeId{1}));
}

TEST_F(ManagerClockTest, ExitRequiresEveryThresholdClear) {
  manager::CentralManager manager(clock_, {}, sec(30.0));
  manager.set_overload_policy(enabled_policy());
  manager.handle_register(make_status(1));
  ASSERT_TRUE(manager.handle_heartbeat(loaded_status(1, 4.0)).degraded);
  // Past the dwell, queue cleared but p95 still hot: must stay overloaded
  // (exit needs every signal clear, not any).
  simulator_.run_until(sec(3.0));
  EXPECT_TRUE(manager.handle_heartbeat(loaded_status(1, 0.0, 5.0)).degraded);
  simulator_.run_until(sec(6.0));
  // Exactly at the exit boundaries (<=): allowed out.
  EXPECT_FALSE(manager.handle_heartbeat(loaded_status(1, 1.0, 2.5)).degraded);
  EXPECT_EQ(manager.stats().overload_exits, 1u);
}

TEST_F(ManagerClockTest, ThresholdFlappingIsBoundedByDwell) {
  manager::CentralManager manager(clock_, {}, sec(60.0));
  manager.set_overload_policy(enabled_policy());  // min_dwell = 2s
  manager.handle_register(make_status(1));
  // Telemetry oscillating across the boundary every 250 ms for 10 s: 40
  // heartbeats, but at most one transition per dwell period.
  bool high = true;
  for (int i = 0; i < 40; ++i) {
    simulator_.run_until(msec(250.0 * (i + 1)));
    manager.handle_heartbeat(loaded_status(1, high ? 4.0 : 0.0));
    high = !high;
  }
  const std::uint64_t transitions =
      manager.stats().overload_enters + manager.stats().overload_exits;
  EXPECT_GE(transitions, 2u);  // the set does react...
  EXPECT_LE(transitions, 6u);  // ...but <= ceil(10s / 2s dwell) + first entry
}

TEST_F(ManagerClockTest, PhaseEpochIsMonotonePerEpisode) {
  manager::CentralManager manager(clock_, {}, sec(60.0));
  manager::OverloadPolicy policy = enabled_policy();
  policy.min_dwell = msec(100.0);
  manager.set_overload_policy(policy);
  manager.handle_register(make_status(1));

  std::vector<std::uint64_t> epochs;
  for (int episode = 0; episode < 3; ++episode) {
    simulator_.run_until(sec(1.0 * (2 * episode + 1)));
    const net::HeartbeatAck enter = manager.handle_heartbeat(loaded_status(1, 5.0));
    ASSERT_TRUE(enter.degraded);
    epochs.push_back(enter.phase_epoch);
    simulator_.run_until(sec(1.0 * (2 * episode + 2)));
    const net::HeartbeatAck exit = manager.handle_heartbeat(loaded_status(1, 0.0));
    ASSERT_FALSE(exit.degraded);
    // The epoch identifies the episode; exiting does not rewind it.
    EXPECT_EQ(exit.phase_epoch, epochs.back());
  }
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0] + 1, epochs[1]);
  EXPECT_EQ(epochs[1] + 1, epochs[2]);
}

TEST_F(ManagerClockTest, BurstCreditExhaustionCountsOnlyWithBacklog) {
  manager::CentralManager manager(clock_, {}, sec(30.0));
  manager.set_overload_policy(enabled_policy());
  manager.handle_register(make_status(1));
  net::NodeStatus starved = make_status(1);
  starved.burst_credits = 0.2;  // below min_burst_credits
  starved.queue_depth = 0;      // but nothing is waiting
  EXPECT_FALSE(manager.handle_heartbeat(starved).degraded);
  starved.queue_depth = starved.cores;  // one waiting frame per core
  EXPECT_TRUE(manager.handle_heartbeat(starved).degraded);
}

TEST_F(ManagerClockTest, PolicyDisabledNeverEntersOverload) {
  manager::CentralManager manager(clock_, {}, sec(30.0));
  manager.handle_register(make_status(1));
  const net::HeartbeatAck ack = manager.handle_heartbeat(loaded_status(1, 50.0));
  EXPECT_FALSE(ack.degraded);
  EXPECT_EQ(ack.phase_epoch, 0u);
  EXPECT_FALSE(manager.overloaded(NodeId{1}));
  EXPECT_EQ(manager.stats().overload_enters, 0u);
}

// ---- cell-shed trigger ----

TEST_F(ManagerClockTest, DiscoveryShedsOnlyWhenWholeCellIsHot) {
  manager::CentralManager manager(clock_, {}, sec(30.0));
  manager::OverloadPolicy policy = enabled_policy();
  policy.min_dwell = 0;
  manager.set_overload_policy(policy);
  manager.handle_register(make_status(1, "9zvxvf"));
  manager.handle_register(make_status(2, "9zvxvg"));  // same 4-char cell
  net::NodeStatus cloud = make_status(3, "9zvxvf");
  cloud.is_cloud = true;
  manager.handle_register(cloud);

  net::DiscoveryRequest req;
  req.client = ClientId{50};
  req.geohash = "9zvxvf";
  req.top_n = 3;

  // One of two volunteers hot: no shed.
  manager.handle_heartbeat(loaded_status(1, 5.0));
  manager.handle_discover(req);
  EXPECT_EQ(manager.stats().cell_sheds, 0u);

  // Both volunteers hot (the cloud node is the shed target, not a source):
  // discovery flips into shed mode.
  manager.handle_heartbeat(loaded_status(2, 5.0));
  manager.handle_discover(req);
  EXPECT_EQ(manager.stats().cell_sheds, 1u);

  // One volunteer recovers: shed mode ends.
  manager.handle_heartbeat(loaded_status(1, 0.0));
  manager.handle_discover(req);
  EXPECT_EQ(manager.stats().cell_sheds, 1u);
}

// ---- end-to-end: dropped frames, re-discover hints ----

harness::NodeSpec throttled_node(const char* name) {
  harness::NodeSpec spec;
  spec.name = name;
  spec.cores = 1;
  spec.base_frame_ms = 60.0;
  spec.burstable = true;
  spec.burst_baseline = 0.3;
  spec.initial_credits_core_sec = 0.5;  // throttles almost immediately
  return spec;
}

TEST(OverloadEndToEnd, DroppedFramesSurfaceAsFailedInClientStats) {
  harness::ScenarioConfig config;
  config.seed = 11;
  config.trace = true;
  config.load_feedback = true;
  harness::Scenario scenario(config);
  scenario.add_node(throttled_node("hot"));
  scenario.start_node(0);

  client::ClientConfig cc;
  cc.id = ClientId{100};
  cc.app.max_fps = 20.0;
  cc.app.adaptive_rate = false;  // keep pressure on
  client::EdgeClient& cl =
      scenario.add_edge_client(harness::ClientSpot{.name = "u"}, cc);
  cl.start();
  scenario.run_until(sec(30.0));

  const client::ClientStats& stats = cl.stats();
  EXPECT_GT(stats.frames_sent, 0u);
  // The throttled executor sheds; fast-fail surfaces them as failed frames
  // instead of silent timeouts.
  EXPECT_GT(stats.frames_failed, 0u);
  EXPECT_GT(scenario.node(0).stats().frames_shed, 0u);
  EXPECT_GT(scenario.trace_recorder()->count(obs::EventKind::kNodeShed), 0u);
  // Frame conservation: everything sent is accounted ok/failed, modulo the
  // handful still in flight (bounded by timeout * fps, generously 32).
  const std::uint64_t settled = stats.frames_ok + stats.frames_failed;
  EXPECT_LE(settled, stats.frames_sent);
  EXPECT_LE(stats.frames_sent - settled, 32u);
}

TEST(OverloadEndToEnd, RediscHintHonoredAtMostOncePerEpoch) {
  harness::ScenarioConfig config;
  config.seed = 12;
  config.trace = true;
  config.load_feedback = true;
  harness::Scenario scenario(config);
  scenario.add_node(throttled_node("hot"));
  // A spare dedicated node nearby — but started only after the client is
  // committed to "hot", so the hint (not initial selection) moves it.
  harness::NodeSpec spare;
  spare.name = "spare";
  spare.position = {44.9800, -93.2700};
  spare.cores = 8;
  spare.base_frame_ms = 15.0;
  spare.dedicated = true;
  scenario.add_node(spare);
  scenario.start_node(0);
  scenario.schedule_node_start(1, sec(15.0));

  client::ClientConfig cc;
  cc.id = ClientId{100};
  cc.app.max_fps = 15.0;
  cc.app.adaptive_rate = false;  // keep pressure on the hot node
  client::EdgeClient& cl =
      scenario.add_edge_client(harness::ClientSpot{.name = "u"}, cc);
  // Let "hot" finish registering first, so the client commits to it.
  scenario.run_until(sec(0.5));
  cl.start();
  scenario.run_until(sec(40.0));

  // The whole loop must have closed: "hot" entered the overload set, the
  // client moved to the spare, and the drained node eventually exited.
  const obs::TraceRecorder& tr = *scenario.trace_recorder();
  EXPECT_GE(tr.count(obs::EventKind::kOverloadEnter), 1u);
  EXPECT_GE(tr.count(obs::EventKind::kOverloadExit), 1u);
  EXPECT_GE(cl.stats().switches + cl.stats().failovers, 1u);
  ASSERT_TRUE(cl.current_node().has_value());
  EXPECT_EQ(*cl.current_node(), scenario.node_id(1));  // ...to the spare
  EXPECT_FALSE(scenario.node(0).degraded());
  // Every honored hint consumed a distinct phase epoch: honoring is
  // at-most-once per (node, episode), no matter how many frame responses
  // carried the same epoch.
  std::vector<double> honored_epochs;
  for (const obs::TraceEvent& ev : scenario.trace_recorder()->events()) {
    if (ev.kind == obs::EventKind::kRediscHint) {
      honored_epochs.push_back(ev.value);
    }
  }
  EXPECT_GE(honored_epochs.size(), 1u);  // the scenario does degrade "hot"
  EXPECT_EQ(cl.stats().redisc_hints, honored_epochs.size());
  const std::set<double> unique(honored_epochs.begin(), honored_epochs.end());
  EXPECT_EQ(unique.size(), honored_epochs.size());
}

TEST(OverloadEndToEnd, FeedbackOffKeepsLegacyBehavior) {
  harness::ScenarioConfig config;
  config.seed = 11;
  config.trace = true;
  config.load_feedback = false;
  harness::Scenario scenario(config);
  scenario.add_node(throttled_node("hot"));
  scenario.start_node(0);
  client::ClientConfig cc;
  cc.id = ClientId{100};
  cc.app.max_fps = 20.0;
  cc.app.adaptive_rate = false;
  client::EdgeClient& cl =
      scenario.add_edge_client(harness::ClientSpot{.name = "u"}, cc);
  cl.start();
  scenario.run_until(sec(30.0));

  // No feedback: no phase, no hints, no fast-fail, no overload tracing.
  EXPECT_FALSE(scenario.node(0).degraded());
  EXPECT_EQ(scenario.node(0).stats().frames_shed, 0u);
  EXPECT_EQ(cl.stats().redisc_hints, 0u);
  const obs::TraceRecorder& trace = *scenario.trace_recorder();
  EXPECT_EQ(trace.count(obs::EventKind::kOverloadEnter), 0u);
  EXPECT_EQ(trace.count(obs::EventKind::kRediscHint), 0u);
  EXPECT_EQ(trace.count(obs::EventKind::kNodeShed), 0u);
  EXPECT_EQ(scenario.central_manager().stats().overload_enters, 0u);
}

// ---- bitwise determinism across thread counts ----

TEST(OverloadDeterminism, HeartbeatTelemetryIdenticalAcrossThreadCounts) {
  // The full trace (which serializes every heartbeat's piggybacked
  // telemetry decisions: overload enters/exits, sheds, hints) must hash
  // identically whether the seeds run on 1 worker or 4.
  check::FuzzLimits limits;
  limits.overload_families = true;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  auto digests = [&](int threads) {
    harness::ParallelRunner runner(threads);
    std::vector<std::function<std::uint64_t()>> jobs;
    for (const std::uint64_t seed : seeds) {
      jobs.emplace_back([seed, &limits] {
        return check::run_spec(check::generate_spec(seed, limits)).trace_digest;
      });
    }
    return runner.map(std::move(jobs));
  };
  const std::vector<std::uint64_t> serial = digests(1);
  const std::vector<std::uint64_t> wide = digests(4);
  EXPECT_EQ(serial, wide);
  for (const std::uint64_t digest : serial) EXPECT_NE(digest, 0u);
}

}  // namespace
}  // namespace eden
