// Unit + property tests for geographic distance and the GeoHash codec.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/geohash.h"
#include "geo/geopoint.h"

namespace eden::geo {
namespace {

TEST(Haversine, ZeroDistanceSamePoint) {
  const GeoPoint p{44.98, -93.26};
  EXPECT_NEAR(haversine_km(p, p), 0.0, 1e-9);
}

TEST(Haversine, KnownCityPairs) {
  const GeoPoint msp{44.9778, -93.2650};   // Minneapolis
  const GeoPoint chi{41.8781, -87.6298};   // Chicago
  const GeoPoint lon{51.5074, -0.1278};    // London
  const GeoPoint nyc{40.7128, -74.0060};   // New York
  EXPECT_NEAR(haversine_km(msp, chi), 571.0, 15.0);
  EXPECT_NEAR(haversine_km(nyc, lon), 5570.0, 60.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{10, 20};
  const GeoPoint b{-30, 150};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(DistanceMiles, ConvertsFromKm) {
  const GeoPoint a{44.9778, -93.2650};
  const GeoPoint b{44.9778, -92.9};
  EXPECT_NEAR(distance_miles(a, b), haversine_km(a, b) / 1.609344, 1e-9);
}

TEST(Geohash, KnownTestVector) {
  // Canonical example from the geohash literature.
  EXPECT_EQ(geohash_encode({42.605, -5.603}, 5), "ezs42");
  const auto center = geohash_decode_center("ezs42");
  ASSERT_TRUE(center.has_value());
  EXPECT_NEAR(center->lat, 42.605, 0.03);
  EXPECT_NEAR(center->lon, -5.603, 0.03);
}

TEST(Geohash, MinneapolisPrefix) {
  const std::string h = geohash_encode({44.9778, -93.2650}, 6);
  EXPECT_EQ(h.substr(0, 4), "9zvx");
}

TEST(Geohash, DecodeRejectsInvalid) {
  EXPECT_FALSE(geohash_decode("").has_value());
  EXPECT_FALSE(geohash_decode("abc!").has_value());
  EXPECT_FALSE(geohash_decode("aaaaaaaaaaaaaaaa").has_value());  // too long
  // 'a', 'i', 'l', 'o' are not in the geohash alphabet.
  EXPECT_FALSE(geohash_decode("9zvxa").has_value());
}

TEST(Geohash, PrecisionClamped) {
  EXPECT_EQ(geohash_encode({0, 0}, 0).size(), 1u);
  EXPECT_EQ(geohash_encode({0, 0}, 99).size(), 12u);
}

TEST(Geohash, DecodeBoxContainsEncodedPoint) {
  const GeoPoint p{44.9778, -93.2650};
  for (int precision = 1; precision <= 12; ++precision) {
    const auto box = geohash_decode(geohash_encode(p, precision));
    ASSERT_TRUE(box.has_value());
    EXPECT_TRUE(box->contains(p)) << "precision " << precision;
  }
}

TEST(Geohash, LongerPrefixSharedByCloserPoints) {
  const GeoPoint user{44.9778, -93.2650};
  const std::string user_hash = geohash_encode(user, 7);
  const std::string near_hash = geohash_encode({44.9800, -93.2700}, 7);
  const std::string far_hash = geohash_encode({41.8781, -87.6298}, 7);
  EXPECT_GT(common_prefix_len(user_hash, near_hash),
            common_prefix_len(user_hash, far_hash));
}

TEST(Geohash, CommonPrefixLen) {
  EXPECT_EQ(common_prefix_len("9zvxvf", "9zvxvf"), 6);
  EXPECT_EQ(common_prefix_len("9zvxvf", "9zvy"), 3);
  EXPECT_EQ(common_prefix_len("abc", ""), 0);
  EXPECT_EQ(common_prefix_len("", ""), 0);
}

TEST(Geohash, NeighborsAreAdjacent) {
  const std::string h = geohash_encode({44.9778, -93.2650}, 6);
  const auto box = geohash_decode(h);
  ASSERT_TRUE(box.has_value());
  const auto north = geohash_neighbor(h, Direction::kNorth);
  ASSERT_TRUE(north.has_value());
  const auto nbox = geohash_decode(*north);
  ASSERT_TRUE(nbox.has_value());
  EXPECT_NEAR(nbox->min_lat, box->max_lat, 1e-9);
  EXPECT_NEAR(nbox->min_lon, box->min_lon, 1e-9);
}

TEST(Geohash, EightDistinctNeighborsAwayFromPoles) {
  const std::string h = geohash_encode({44.9778, -93.2650}, 6);
  const auto neighbors = geohash_neighbors(h);
  for (const auto& n : neighbors) {
    EXPECT_EQ(n.size(), 6u);
    EXPECT_NE(n, h);
  }
}

TEST(Geohash, NeighborWrapsLongitude) {
  const std::string h = geohash_encode({10.0, 179.999}, 5);
  const auto east = geohash_neighbor(h, Direction::kEast);
  ASSERT_TRUE(east.has_value());
  const auto center = geohash_decode_center(*east);
  ASSERT_TRUE(center.has_value());
  EXPECT_LT(center->lon, 0.0);  // crossed the antimeridian
}

TEST(Geohash, CellWidthShrinksWithPrecision) {
  for (int p = 1; p < 12; ++p) {
    EXPECT_GT(cell_width_km(p), cell_width_km(p + 1));
  }
  // Precision 6 cells are roughly 1.2 km wide x ~0.6 km tall.
  EXPECT_NEAR(cell_width_km(6), 1.2, 0.3);
}

TEST(Geohash, PrecisionForRadius) {
  // A chosen precision's cell must be at least as wide as the radius.
  for (const double radius : {0.5, 2.0, 20.0, 150.0, 1000.0}) {
    const int p = precision_for_radius_km(radius);
    EXPECT_GE(cell_width_km(p), radius);
    if (p < 12) {
      EXPECT_LT(cell_width_km(p + 1), radius);
    }
  }
}

// Property: encode/decode round trip keeps the point inside the cell and
// the cell center within half a cell diagonal, across random points and
// precisions.
class GeohashRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(GeohashRoundTrip, RandomPoints) {
  const int precision = GetParam();
  eden::Rng rng(1000 + precision);
  for (int i = 0; i < 500; ++i) {
    const GeoPoint p{rng.uniform(-89.9, 89.9), rng.uniform(-180.0, 180.0)};
    const std::string h = geohash_encode(p, precision);
    ASSERT_EQ(h.size(), static_cast<std::size_t>(precision));
    const auto box = geohash_decode(h);
    ASSERT_TRUE(box.has_value());
    EXPECT_TRUE(box->contains(p));
    // Re-encoding the center lands in the same cell.
    EXPECT_EQ(geohash_encode(box->center(), precision), h);
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, GeohashRoundTrip,
                         ::testing::Values(1, 2, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace eden::geo
