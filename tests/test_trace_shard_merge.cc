// Canonical trace merge (obs::merge_shard_traces): per-shard TraceRecorder
// streams merged into (time, site) order must be byte-identical to the
// canonicalized single-stream ordering of the same events — the property
// the sharded==sequential witness digest rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_merge.h"

namespace eden {
namespace {

constexpr HostId kManager{0};

obs::TraceEvent make_event(SimTime at, obs::EventKind kind,
                           std::uint32_t actor, std::uint32_t subject = 0,
                           double value = 0.0) {
  obs::TraceEvent event;
  event.at = at;
  event.kind = kind;
  event.actor = HostId{actor};
  event.subject = HostId{subject};
  event.value = value;
  return event;
}

TEST(TraceSite, ActorSideEventsSiteAtTheActor) {
  const auto probe = make_event(msec(5), obs::EventKind::kProbeSend, 7, 2);
  EXPECT_EQ(obs::trace_site(probe, kManager), HostId{7});
  const auto heartbeat =
      make_event(msec(5), obs::EventKind::kNodeHeartbeat, 3);
  EXPECT_EQ(obs::trace_site(heartbeat, kManager), HostId{3});
}

TEST(TraceSite, ManagerSideObservationsSiteAtTheManager) {
  // These five kinds are recorded by the manager's domain even though the
  // actor is the node/client concerned.
  for (const obs::EventKind kind :
       {obs::EventKind::kNodeExpire, obs::EventKind::kNodeRejoin,
        obs::EventKind::kOverloadEnter, obs::EventKind::kOverloadExit,
        obs::EventKind::kCellShed}) {
    const auto event = make_event(msec(9), kind, 42);
    EXPECT_EQ(obs::trace_site(event, kManager), kManager)
        << obs::to_string(kind);
  }
}

TEST(TraceShardMerge, MergedShardsMatchSingleStreamByteForByte) {
  // A sequential recorder sees every event in execution order; the same
  // run sharded two ways records per-domain sub-streams. All three merges
  // must render to identical JSONL.
  const std::vector<obs::TraceEvent> sequential = {
      make_event(msec(1), obs::EventKind::kNodeRegister, 1),
      make_event(msec(1), obs::EventKind::kNodeRegister, 2),
      make_event(msec(2), obs::EventKind::kDiscoverySend, 5),
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 1, 0, 3.0),
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 1, 0, 4.0),
      make_event(msec(2), obs::EventKind::kNodeExpire, 2),  // manager-side
      make_event(msec(3), obs::EventKind::kJoinSend, 5, 1),
  };
  // Partition A: {manager+node1} vs {node2, client5}.
  const std::vector<obs::TraceEvent> a0 = {
      make_event(msec(1), obs::EventKind::kNodeRegister, 1),
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 1, 0, 3.0),
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 1, 0, 4.0),
      make_event(msec(2), obs::EventKind::kNodeExpire, 2),
  };
  const std::vector<obs::TraceEvent> a1 = {
      make_event(msec(1), obs::EventKind::kNodeRegister, 2),
      make_event(msec(2), obs::EventKind::kDiscoverySend, 5),
      make_event(msec(3), obs::EventKind::kJoinSend, 5, 1),
  };
  // Partition B: {manager+client5} vs {node1} vs {node2}.
  const std::vector<obs::TraceEvent> b0 = {
      make_event(msec(2), obs::EventKind::kDiscoverySend, 5),
      make_event(msec(2), obs::EventKind::kNodeExpire, 2),
      make_event(msec(3), obs::EventKind::kJoinSend, 5, 1),
  };
  const std::vector<obs::TraceEvent> b1 = {
      make_event(msec(1), obs::EventKind::kNodeRegister, 1),
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 1, 0, 3.0),
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 1, 0, 4.0),
  };
  const std::vector<obs::TraceEvent> b2 = {
      make_event(msec(1), obs::EventKind::kNodeRegister, 2),
  };

  const std::string canon_seq =
      obs::events_to_jsonl(obs::merge_shard_traces({&sequential}, kManager));
  const std::string canon_a =
      obs::events_to_jsonl(obs::merge_shard_traces({&a0, &a1}, kManager));
  const std::string canon_b =
      obs::events_to_jsonl(obs::merge_shard_traces({&b0, &b1, &b2}, kManager));
  EXPECT_EQ(canon_a, canon_seq);
  EXPECT_EQ(canon_b, canon_seq);
}

TEST(TraceShardMerge, StableWithinOneSite) {
  // Same (time, site) events must keep their recording order — the merge
  // is a stable sort, never a shuffle.
  const std::vector<obs::TraceEvent> stream = {
      make_event(msec(2), obs::EventKind::kFrameSend, 4, 1, 10.0),
      make_event(msec(2), obs::EventKind::kFrameSend, 4, 1, 11.0),
      make_event(msec(2), obs::EventKind::kFrameSend, 4, 1, 12.0),
  };
  const auto merged = obs::merge_shard_traces({&stream}, kManager);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].value, 10.0);
  EXPECT_EQ(merged[1].value, 11.0);
  EXPECT_EQ(merged[2].value, 12.0);
}

TEST(TraceShardMerge, OrdersByTimeThenSite) {
  const std::vector<obs::TraceEvent> high_site = {
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 9),
  };
  const std::vector<obs::TraceEvent> low_site = {
      make_event(msec(2), obs::EventKind::kNodeHeartbeat, 3),
      make_event(msec(1), obs::EventKind::kNodeHeartbeat, 3),
  };
  const auto merged =
      obs::merge_shard_traces({&high_site, &low_site}, kManager);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].at, msec(1));
  EXPECT_EQ(merged[1].actor, HostId{3});  // time ties break by site
  EXPECT_EQ(merged[2].actor, HostId{9});
}

TEST(TraceShardMerge, EmptyPartsYieldEmptyStream) {
  const std::vector<obs::TraceEvent> empty;
  EXPECT_TRUE(obs::merge_shard_traces({}, kManager).empty());
  EXPECT_TRUE(obs::merge_shard_traces({&empty, &empty}, kManager).empty());
  EXPECT_EQ(obs::events_to_jsonl({}), "");
}

}  // namespace
}  // namespace eden
