// Tests for the optimal-assignment solver: exactness on small instances,
// local-search quality on larger ones.
#include "baselines/optimal.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eden::baselines {
namespace {

NodeInfo make_node(std::uint32_t id, int cores, double frame_ms) {
  NodeInfo info;
  info.id = NodeId{id};
  info.cores = cores;
  info.base_frame_ms = frame_ms;
  return info;
}

PredictInput random_input(int users, int nodes, std::uint64_t seed) {
  Rng rng(seed);
  PredictInput input;
  for (int j = 0; j < nodes; ++j) {
    input.nodes.push_back(make_node(static_cast<std::uint32_t>(j),
                                    static_cast<int>(rng.uniform_int(1, 8)),
                                    rng.uniform(15, 60)));
  }
  for (int i = 0; i < users; ++i) {
    std::vector<double> rtt;
    std::vector<double> trans;
    for (int j = 0; j < nodes; ++j) {
      rtt.push_back(rng.uniform(5, 55));
      trans.push_back(rng.uniform(1, 5));
    }
    input.rtt_ms.push_back(std::move(rtt));
    input.trans_ms.push_back(std::move(trans));
  }
  return input;
}

TEST(Optimal, TrivialSingleUser) {
  PredictInput input;
  input.nodes = {make_node(0, 1, 60.0), make_node(1, 1, 20.0)};
  input.rtt_ms = {{10.0, 10.0}};
  input.trans_ms = {{0.0, 0.0}};
  Rng rng(1);
  const auto result = solve_optimal(input, rng);
  EXPECT_TRUE(result.exact);
  ASSERT_EQ(result.assignment.size(), 1u);
  EXPECT_EQ(result.assignment[0], 1);  // the faster node
}

TEST(Optimal, EmptyInput) {
  PredictInput input;
  Rng rng(1);
  const auto result = solve_optimal(input, rng);
  EXPECT_TRUE(result.assignment.empty());
}

TEST(Optimal, ExhaustiveMatchesManualEnumeration) {
  const auto input = random_input(4, 3, 99);  // 81 assignments
  Rng rng(5);
  const auto result = solve_optimal(input, rng);
  ASSERT_TRUE(result.exact);

  // Manual brute force.
  double best = 1e18;
  std::vector<int> assignment(4, 0);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        for (int d = 0; d < 3; ++d) {
          best = std::min(best,
                          average_latency_ms(input, {a, b, c, d}));
        }
      }
    }
  }
  EXPECT_NEAR(result.avg_latency_ms, best, 1e-9);
}

TEST(Optimal, ReportsObjectiveOfReturnedAssignment) {
  const auto input = random_input(5, 4, 7);
  Rng rng(2);
  const auto result = solve_optimal(input, rng);
  EXPECT_NEAR(average_latency_ms(input, result.assignment),
              result.avg_latency_ms, 1e-9);
}

TEST(Optimal, LoadBalancesIdenticalWorld) {
  // 4 users, 2 identical 1-core nodes: optimum must split 2/2.
  PredictInput input;
  input.nodes = {make_node(0, 1, 30.0), make_node(1, 1, 30.0)};
  for (int i = 0; i < 4; ++i) {
    input.rtt_ms.push_back({10.0, 10.0});
    input.trans_ms.push_back({0.0, 0.0});
  }
  Rng rng(3);
  const auto result = solve_optimal(input, rng);
  int on_zero = 0;
  for (const int a : result.assignment) on_zero += a == 0 ? 1 : 0;
  EXPECT_EQ(on_zero, 2);
}

// Property: on instances small enough to enumerate, the local-search path
// (forced by a tiny exhaustive budget) gets within 10% of the true optimum.
class LocalSearchQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchQuality, NearExhaustive) {
  const auto input = random_input(6, 4, GetParam());  // 4096 assignments
  Rng rng1(11);
  const auto exact = solve_optimal(input, rng1);
  ASSERT_TRUE(exact.exact);

  OptimalConfig forced;
  forced.max_exhaustive = 1;  // force the heuristic path
  Rng rng2(12);
  const auto heuristic = solve_optimal(input, rng2, forced);
  EXPECT_FALSE(heuristic.exact);
  EXPECT_LE(heuristic.avg_latency_ms, exact.avg_latency_ms * 1.10);
  EXPECT_GE(heuristic.avg_latency_ms, exact.avg_latency_ms - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchQuality,
                         ::testing::Values(1, 22, 333, 4444));

TEST(Optimal, PaperScaleInstanceRunsQuickly) {
  // 15 users x 9 nodes (the Fig 7 configuration) must fall back to local
  // search and produce a sane assignment.
  const auto input = random_input(15, 9, 2022);
  Rng rng(6);
  const auto result = solve_optimal(input, rng);
  EXPECT_FALSE(result.exact);
  EXPECT_EQ(result.assignment.size(), 15u);
  EXPECT_GT(result.avg_latency_ms, 0.0);
  for (const int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 9);
  }
}

}  // namespace
}  // namespace eden::baselines
