// Tests for the trace-driven network model: step interpolation, symmetry,
// trace parsing, and the end-to-end behaviour it enables — a client
// switching nodes because the NETWORK changed, not the load.
#include "net/trace_network.h"

#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/scenario.h"

namespace eden::net {
namespace {

class FixedClock final : public sim::Clock {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }
  void set(SimTime t) { now_ = t; }

 private:
  SimTime now_{0};
};

TEST(TraceNetwork, DefaultWithoutSamples) {
  FixedClock clock;
  TraceNetwork net(clock, 42.0);
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(42.0));
  EXPECT_LT(net.base_rtt(HostId{1}, HostId{1}), msec(1.0));  // loopback
}

TEST(TraceNetwork, StepInterpolation) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0);
  net.add_sample(HostId{1}, HostId{2}, sec(10), 20.0);
  net.add_sample(HostId{1}, HostId{2}, sec(30), 80.0);

  clock.set(sec(5));  // before the first sample -> first sample applies
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(20.0));
  clock.set(sec(10));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(20.0));
  clock.set(sec(29));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(20.0));
  clock.set(sec(30));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(80.0));
  clock.set(sec(1000));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(80.0));
}

TEST(TraceNetwork, SymmetricPairs) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0);
  net.add_sample(HostId{2}, HostId{1}, 0, 15.0);
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(15.0));
  EXPECT_EQ(net.base_rtt(HostId{2}, HostId{1}), msec(15.0));
}

TEST(TraceNetwork, OutOfOrderSamplesAreSorted) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0);
  net.add_sample(HostId{1}, HostId{2}, sec(30), 80.0);
  net.add_sample(HostId{1}, HostId{2}, sec(10), 20.0);
  clock.set(sec(15));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(20.0));
}

TEST(TraceNetwork, ParsesTraceText) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0);
  const int loaded = net.load_trace_text(
      "# t_sec,host_a,host_b,rtt_ms\n"
      "0, 1, 2, 12.5\n"
      "\n"
      "30, 1, 2, 45.0  # congestion sets in\n"
      "0, 1, 3, 8.0\n");
  EXPECT_EQ(loaded, 3);
  EXPECT_EQ(net.sample_count(), 3u);
  clock.set(sec(40));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(45.0));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{3}), msec(8.0));
}

TEST(TraceNetwork, RejectsMalformedTraceAtomically) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0);
  EXPECT_EQ(net.load_trace_text("0,1,2,10\nnot a line\n"), -1);
  EXPECT_EQ(net.sample_count(), 0u);  // nothing partially applied
  EXPECT_EQ(net.load_trace_text("0,1,2,-5\n"), -1);  // negative rtt
  EXPECT_EQ(net.load_trace_file("/nonexistent/trace.csv"), -1);
}

TEST(TraceNetwork, EmptyTraceTextLoadsNothing) {
  FixedClock clock;
  TraceNetwork net(clock, 33.0);
  EXPECT_EQ(net.load_trace_text(""), 0);
  EXPECT_EQ(net.load_trace_text("# only comments\n\n   \n"), 0);
  EXPECT_EQ(net.sample_count(), 0u);
  // With nothing loaded every pair uses the default.
  EXPECT_EQ(net.base_rtt(HostId{7}, HostId{8}), msec(33.0));
}

TEST(TraceNetwork, UnknownHostPairsFallBackToDefault) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0, 75.0);
  net.add_sample(HostId{1}, HostId{2}, 0, 10.0);
  clock.set(sec(100));
  // The traced pair uses its sample; every other pair (even sharing one
  // endpoint with a traced pair) keeps the default.
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(10.0));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{3}), msec(50.0));
  EXPECT_EQ(net.base_rtt(HostId{9}, HostId{4}), msec(50.0));
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(HostId{9}, HostId{4}), 75.0);
}

TEST(TraceNetwork, OutOfOrderTimestampsAcrossLoadAndAdd) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0);
  // Text samples arrive newest-first; an add_sample lands in between.
  EXPECT_EQ(net.load_trace_text("40,1,2,70\n5,1,2,10\n"), 2);
  net.add_sample(HostId{1}, HostId{2}, sec(20), 30.0);
  clock.set(sec(4));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(10.0));
  clock.set(sec(25));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(30.0));
  clock.set(sec(60));
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), msec(70.0));
}

TEST(TraceNetwork, UplinkCapsBandwidth) {
  FixedClock clock;
  TraceNetwork net(clock, 50.0, 100.0);
  net.set_uplink_mbps(HostId{1}, 10.0);
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(HostId{1}, HostId{2}), 10.0);
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(HostId{2}, HostId{3}), 100.0);
}

// End to end: the trace degrades the client's current path mid-run; the
// periodic probing must move the client even though node load never
// changed.
TEST(TraceNetwork, ClientSwitchesWhenTraceDegradesItsPath) {
  harness::ScenarioConfig config;
  config.seed = 9;
  TraceNetwork* trace = nullptr;
  harness::Scenario scenario(config, [&](sim::Clock& clock) {
    auto model = std::make_unique<TraceNetwork>(clock, 25.0, 50.0, 0.0);
    trace = model.get();
    return model;
  });

  harness::NodeSpec spec;
  spec.name = "a";
  spec.cores = 4;
  spec.base_frame_ms = 30.0;
  const auto a = scenario.add_node(spec);
  spec.name = "b";
  const auto b = scenario.add_node(spec);
  harness::start_all_nodes(scenario);

  client::ClientConfig client_config;
  client_config.top_n = 2;
  client_config.probing_period = sec(2.0);
  auto& user = scenario.add_edge_client(harness::ClientSpot{.name = "u"},
                                        client_config);

  // Node a starts much closer; at t=20 s the trace flips the ordering.
  trace->load_trace_text(
      "0," + std::to_string(user.id().value) + "," +
      std::to_string(scenario.node_id(a).value) + ",8\n" +
      "0," + std::to_string(user.id().value) + "," +
      std::to_string(scenario.node_id(b).value) + ",40\n" +
      "20," + std::to_string(user.id().value) + "," +
      std::to_string(scenario.node_id(a).value) + ",90\n" +
      "20," + std::to_string(user.id().value) + "," +
      std::to_string(scenario.node_id(b).value) + ",12\n");

  scenario.run_until(sec(2.0));
  user.start();
  scenario.run_until(sec(15.0));
  ASSERT_TRUE(user.current_node().has_value());
  EXPECT_EQ(*user.current_node(), scenario.node_id(a));
  const double before = user.latency_series().window(sec(5), sec(15)).mean();

  scenario.run_until(sec(40.0));
  ASSERT_TRUE(user.current_node().has_value());
  EXPECT_EQ(*user.current_node(), scenario.node_id(b));
  EXPECT_GE(user.stats().switches, 1u);
  const double after = user.latency_series().window(sec(30), sec(40)).mean();
  // Back near the pre-degradation latency (12 ms path vs 8 ms path).
  EXPECT_LT(after, before + 15.0);
}

}  // namespace
}  // namespace eden::net
