// Fault-injection tests: directional cuts, partitions, host brownouts and
// latency inflation — and the client's reaction when a PATH dies while
// both endpoints stay up (the case the paper's connection-level failure
// monitor must catch).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "geo/geopoint.h"
#include "harness/experiments.h"
#include "harness/scenario.h"
#include "manager/registry.h"
#include "net/sim_network.h"

namespace eden {
namespace {

using harness::ClientSpot;
using harness::NodeSpec;
using harness::Scenario;
using harness::ScenarioConfig;

// ---- FaultInjector unit behaviour ----

TEST(FaultInjector, DirectionalCut) {
  net::FaultInjector faults;
  faults.cut_link(HostId{1}, HostId{2}, msec(100), msec(200));
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{2}, msec(50)));
  EXPECT_TRUE(faults.dropped(HostId{1}, HostId{2}, msec(150)));
  EXPECT_FALSE(faults.dropped(HostId{2}, HostId{1}, msec(150)));  // one way
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{2}, msec(200)));  // half-open
}

TEST(FaultInjector, PartitionCutsBothWays) {
  net::FaultInjector faults;
  faults.partition(HostId{1}, HostId{2}, 0, sec(1));
  EXPECT_TRUE(faults.dropped(HostId{1}, HostId{2}, msec(10)));
  EXPECT_TRUE(faults.dropped(HostId{2}, HostId{1}, msec(10)));
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{3}, msec(10)));
}

TEST(FaultInjector, HostIsolationIsWildcard) {
  net::FaultInjector faults;
  faults.isolate_host(HostId{5}, 0, sec(1));
  EXPECT_TRUE(faults.dropped(HostId{5}, HostId{1}, msec(10)));
  EXPECT_TRUE(faults.dropped(HostId{2}, HostId{5}, msec(10)));
  EXPECT_FALSE(faults.dropped(HostId{2}, HostId{1}, msec(10)));
}

TEST(FaultInjector, SlowLinkMultiplies) {
  net::FaultInjector faults;
  faults.slow_link(HostId{1}, HostId{2}, 3.0, 0, sec(1));
  faults.slow_link(HostId{1}, HostId{2}, 2.0, 0, sec(1));
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{1}, HostId{2}, msec(10)), 6.0);
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{2}, HostId{1}, msec(10)), 1.0);
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{1}, HostId{2}, sec(2)), 1.0);
}

// ---- fabric integration ----

TEST(SimNetworkFaults, CutDropsAtSendTime) {
  sim::Simulator simulator;
  net::MatrixNetwork model(20.0, 100.0, 0.0);
  net::HostTable hosts;
  net::SimNetwork fabric(simulator, model, hosts, Rng(1));
  net::FaultInjector faults;
  fabric.set_fault_injector(&faults);
  hosts.set_alive(HostId{1}, true);
  hosts.set_alive(HostId{2}, true);
  faults.cut_link(HostId{1}, HostId{2}, 0, msec(100));

  int delivered = 0;
  fabric.deliver(HostId{1}, HostId{2}, 0, [&] { ++delivered; });  // cut
  simulator.run_until(msec(150));
  fabric.deliver(HostId{1}, HostId{2}, 0, [&] { ++delivered; });  // healed
  simulator.run_all();
  EXPECT_EQ(delivered, 1);
}

TEST(SimNetworkFaults, SlowLinkInflatesRpcLatency) {
  sim::Simulator simulator;
  net::MatrixNetwork model(20.0, 100.0, 0.0);
  net::HostTable hosts;
  net::SimNetwork fabric(simulator, model, hosts, Rng(1));
  net::FaultInjector faults;
  fabric.set_fault_injector(&faults);
  hosts.set_alive(HostId{1}, true);
  hosts.set_alive(HostId{2}, true);
  faults.slow_link(HostId{1}, HostId{2}, 5.0, 0, sec(10));

  SimTime completed_at = 0;
  fabric.rpc<int>(
      HostId{1}, HostId{2}, 0, 0, sec(5), [] { return 1; },
      [&](std::optional<int> r) {
        ASSERT_TRUE(r.has_value());
        completed_at = simulator.now();
      });
  simulator.run_all();
  // Outbound leg 10 ms x5 = 50 ms, return leg 10 ms -> 60 ms total.
  EXPECT_EQ(completed_at, msec(60));
}

// ---- protocol reaction: path death with both endpoints alive ----

class PathFaultTest : public ::testing::Test {
 protected:
  PathFaultTest()
      : scenario_(ScenarioConfig{.seed = 77}, harness::NetKind::kGeo) {
    scenario_.fabric().set_fault_injector(&faults_);
    NodeSpec spec;
    spec.name = "primary";
    spec.position = {44.978, -93.265};
    spec.tier = net::AccessTier::kFiber;
    spec.cores = 4;
    spec.base_frame_ms = 15.0;
    primary_ = scenario_.add_node(spec);
    spec.name = "backup";
    spec.position = {44.99, -93.25};
    spec.base_frame_ms = 30.0;
    backup_ = scenario_.add_node(spec);
    harness::start_all_nodes(scenario_);
    scenario_.run_until(sec(2.0));
  }

  Scenario scenario_;
  net::FaultInjector faults_;
  std::size_t primary_{0};
  std::size_t backup_{0};
};

TEST_F(PathFaultTest, ClientFailsOverWhenItsPathDiesNodeStaysUp) {
  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(2.0);
  auto& user = scenario_.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(user.current_node().has_value());
  const std::size_t current = *scenario_.node_index(*user.current_node());

  // Sever only this client's path to its node, both directions, forever.
  faults_.partition(user.id(), scenario_.node_id(current), sec(6), sec(600));
  scenario_.run_until(sec(12.0));

  // The node is still running and registered — but this client moved.
  EXPECT_TRUE(scenario_.node(current).running());
  ASSERT_TRUE(user.current_node().has_value());
  EXPECT_NE(*scenario_.node_index(*user.current_node()), current);
  EXPECT_GE(user.stats().failovers, 1u);
  // And frames flow again on the new node (the rate controller is still
  // recovering from the failure backoff, so expect a reduced rate).
  scenario_.run_until(sec(16.0));
  EXPECT_GT(user.latency_series().window(sec(9), sec(16)).count(), 30u);
}

TEST_F(PathFaultTest, TransientBrownoutHealsWithoutFlapping) {
  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(2.0);
  auto& user = scenario_.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(user.current_node().has_value());

  // 600 ms brownout: shorter than keepalive_misses x period detection, so
  // the client should ride it out without a failover.
  faults_.partition(user.id(), *user.current_node(), sec(6), sec(6.6));
  scenario_.run_until(sec(12.0));
  EXPECT_EQ(user.stats().hard_failures, 0u);
  EXPECT_GT(user.latency_series().window(sec(8), sec(12)).count(), 20u);
}

TEST_F(PathFaultTest, ManagerBrownoutOnlyPausesDiscovery) {
  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(2.0);
  auto& user = scenario_.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();
  scenario_.run_until(sec(6.0));
  const auto frames_before = user.stats().frames_ok;

  // The manager goes dark for 10 s; the data plane must not care.
  faults_.isolate_host(HostId{0}, sec(6), sec(16));
  scenario_.run_until(sec(16.0));
  EXPECT_GT(user.stats().frames_ok, frames_before + 100);
  EXPECT_TRUE(user.current_node().has_value());
}

TEST_F(PathFaultTest, FailoverLandsOnSlowedBackupWhenNodeDies) {
  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(2.0);
  auto& user = scenario_.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(user.current_node().has_value());
  const std::size_t current = *scenario_.node_index(*user.current_node());
  const std::size_t other = current == primary_ ? backup_ : primary_;

  // The only surviving path is 4x slower AND the attached node dies: the
  // failover must still land on the slowed backup, not strand the client.
  faults_.slow_link(user.id(), scenario_.node_id(other), 4.0, sec(5), sec(30));
  scenario_.stop_node(current, /*graceful=*/false);
  scenario_.run_until(sec(14.0));

  ASSERT_TRUE(user.current_node().has_value());
  EXPECT_EQ(*user.current_node(), scenario_.node_id(other));
  // The recovery can be booked as a backup takeover, a probing-cycle
  // switch, or a plain re-join from the detached state if the slowed
  // takeover loses the race — the invariant is the second join landed.
  EXPECT_GE(user.stats().joins, 2u);
  EXPECT_GT(user.latency_series().window(sec(10), sec(14)).count(), 10u);
}

// ---- churn + fault windows together ----

// Node lifecycle churn overlapping a fault window: one node arrives late,
// one dies mid-run while the client's path to a third is browned out. The
// client must end attached to a node that is actually running.
TEST(ChurnFaults, ScheduledChurnWithFaultWindowKeepsClientOnLiveNode) {
  net::FaultInjector faults;
  Scenario scenario(ScenarioConfig{.seed = 31}, harness::NetKind::kGeo);
  scenario.fabric().set_fault_injector(&faults);

  NodeSpec spec;
  spec.position = {44.978, -93.265};
  spec.tier = net::AccessTier::kFiber;
  spec.cores = 4;
  spec.base_frame_ms = 20.0;
  spec.name = "anchor";
  const auto anchor = scenario.add_node(spec);
  spec.name = "late";
  spec.position = {44.99, -93.25};
  const auto late = scenario.add_node(spec);
  spec.name = "doomed";
  spec.position = {44.96, -93.28};
  const auto doomed = scenario.add_node(spec);

  scenario.start_node(anchor);
  scenario.start_node(doomed);
  scenario.schedule_node_start(late, sec(6.0));
  scenario.schedule_node_stop(doomed, sec(12.0), /*graceful=*/false);

  client::ClientConfig config;
  config.top_n = 3;
  config.probing_period = sec(2.0);
  auto& user = scenario.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();

  // Brownout to the doomed node straddles its death; brownout to the late
  // arrival straddles its birth.
  faults.partition(user.id(), scenario.node_id(doomed), sec(10), sec(14));
  faults.slow_link(user.id(), scenario.node_id(late), 3.0, sec(5), sec(8));

  scenario.run_until(sec(24.0));

  ASSERT_TRUE(user.current_node().has_value());
  const auto index = scenario.node_index(*user.current_node());
  ASSERT_TRUE(index.has_value());
  EXPECT_TRUE(scenario.node(*index).running());
  EXPECT_NE(*index, doomed);
  EXPECT_GT(user.stats().frames_ok, 0u);
  // Frames still flowing in the quiet tail after all churn settled.
  EXPECT_GT(user.latency_series().window(sec(18), sec(24)).count(), 20u);
}

// A dead node must age out of the registry even while the manager's link
// to OTHER hosts is degraded — TTL expiry is local to the manager.
TEST(ChurnFaults, RegistryExpiresDeadNodeDuringUnrelatedFaults) {
  net::FaultInjector faults;
  const ScenarioConfig config{.seed = 33, .heartbeat_ttl = sec(3.0)};
  Scenario scenario(config, harness::NetKind::kGeo);
  scenario.fabric().set_fault_injector(&faults);

  NodeSpec spec;
  spec.position = {44.978, -93.265};
  spec.tier = net::AccessTier::kFiber;
  spec.cores = 2;
  spec.name = "stays";
  const auto stays = scenario.add_node(spec);
  spec.name = "dies";
  spec.position = {44.99, -93.25};
  const auto dies = scenario.add_node(spec);
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));
  const auto live_ids = [&scenario](SimTime now) {
    std::vector<NodeId> ids;
    scenario.central_manager().registry().for_each_live(
        "", now,
        [&ids](const manager::RegistryEntry& entry,
               const std::optional<geo::GeoPoint>&) {
          ids.push_back(entry.status.node);
        });
    return ids;
  };
  ASSERT_EQ(live_ids(sec(2.0)).size(), 2u);

  // Unrelated noise: slow the surviving node's heartbeat path.
  faults.slow_link(scenario.node_id(stays), HostId{0}, 2.0, sec(2), sec(20));
  scenario.stop_node(dies, /*graceful=*/false);
  scenario.run_until(sec(12.0));

  const auto live = live_ids(sec(12.0));
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live.front(), scenario.node_id(stays));
}

}  // namespace
}  // namespace eden
