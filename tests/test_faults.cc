// Fault-injection tests: directional cuts, partitions, host brownouts and
// latency inflation — and the client's reaction when a PATH dies while
// both endpoints stay up (the case the paper's connection-level failure
// monitor must catch).
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/scenario.h"
#include "net/sim_network.h"

namespace eden {
namespace {

using harness::ClientSpot;
using harness::NodeSpec;
using harness::Scenario;
using harness::ScenarioConfig;

// ---- FaultInjector unit behaviour ----

TEST(FaultInjector, DirectionalCut) {
  net::FaultInjector faults;
  faults.cut_link(HostId{1}, HostId{2}, msec(100), msec(200));
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{2}, msec(50)));
  EXPECT_TRUE(faults.dropped(HostId{1}, HostId{2}, msec(150)));
  EXPECT_FALSE(faults.dropped(HostId{2}, HostId{1}, msec(150)));  // one way
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{2}, msec(200)));  // half-open
}

TEST(FaultInjector, PartitionCutsBothWays) {
  net::FaultInjector faults;
  faults.partition(HostId{1}, HostId{2}, 0, sec(1));
  EXPECT_TRUE(faults.dropped(HostId{1}, HostId{2}, msec(10)));
  EXPECT_TRUE(faults.dropped(HostId{2}, HostId{1}, msec(10)));
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{3}, msec(10)));
}

TEST(FaultInjector, HostIsolationIsWildcard) {
  net::FaultInjector faults;
  faults.isolate_host(HostId{5}, 0, sec(1));
  EXPECT_TRUE(faults.dropped(HostId{5}, HostId{1}, msec(10)));
  EXPECT_TRUE(faults.dropped(HostId{2}, HostId{5}, msec(10)));
  EXPECT_FALSE(faults.dropped(HostId{2}, HostId{1}, msec(10)));
}

TEST(FaultInjector, SlowLinkMultiplies) {
  net::FaultInjector faults;
  faults.slow_link(HostId{1}, HostId{2}, 3.0, 0, sec(1));
  faults.slow_link(HostId{1}, HostId{2}, 2.0, 0, sec(1));
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{1}, HostId{2}, msec(10)), 6.0);
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{2}, HostId{1}, msec(10)), 1.0);
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{1}, HostId{2}, sec(2)), 1.0);
}

// ---- fabric integration ----

TEST(SimNetworkFaults, CutDropsAtSendTime) {
  sim::Simulator simulator;
  net::MatrixNetwork model(20.0, 100.0, 0.0);
  net::HostTable hosts;
  net::SimNetwork fabric(simulator, model, hosts, Rng(1));
  net::FaultInjector faults;
  fabric.set_fault_injector(&faults);
  hosts.set_alive(HostId{1}, true);
  hosts.set_alive(HostId{2}, true);
  faults.cut_link(HostId{1}, HostId{2}, 0, msec(100));

  int delivered = 0;
  fabric.deliver(HostId{1}, HostId{2}, 0, [&] { ++delivered; });  // cut
  simulator.run_until(msec(150));
  fabric.deliver(HostId{1}, HostId{2}, 0, [&] { ++delivered; });  // healed
  simulator.run_all();
  EXPECT_EQ(delivered, 1);
}

TEST(SimNetworkFaults, SlowLinkInflatesRpcLatency) {
  sim::Simulator simulator;
  net::MatrixNetwork model(20.0, 100.0, 0.0);
  net::HostTable hosts;
  net::SimNetwork fabric(simulator, model, hosts, Rng(1));
  net::FaultInjector faults;
  fabric.set_fault_injector(&faults);
  hosts.set_alive(HostId{1}, true);
  hosts.set_alive(HostId{2}, true);
  faults.slow_link(HostId{1}, HostId{2}, 5.0, 0, sec(10));

  SimTime completed_at = 0;
  fabric.rpc<int>(
      HostId{1}, HostId{2}, 0, 0, sec(5), [] { return 1; },
      [&](std::optional<int> r) {
        ASSERT_TRUE(r.has_value());
        completed_at = simulator.now();
      });
  simulator.run_all();
  // Outbound leg 10 ms x5 = 50 ms, return leg 10 ms -> 60 ms total.
  EXPECT_EQ(completed_at, msec(60));
}

// ---- protocol reaction: path death with both endpoints alive ----

class PathFaultTest : public ::testing::Test {
 protected:
  PathFaultTest()
      : scenario_(ScenarioConfig{.seed = 77}, harness::NetKind::kGeo) {
    scenario_.fabric().set_fault_injector(&faults_);
    NodeSpec spec;
    spec.name = "primary";
    spec.position = {44.978, -93.265};
    spec.tier = net::AccessTier::kFiber;
    spec.cores = 4;
    spec.base_frame_ms = 15.0;
    primary_ = scenario_.add_node(spec);
    spec.name = "backup";
    spec.position = {44.99, -93.25};
    spec.base_frame_ms = 30.0;
    backup_ = scenario_.add_node(spec);
    harness::start_all_nodes(scenario_);
    scenario_.run_until(sec(2.0));
  }

  Scenario scenario_;
  net::FaultInjector faults_;
  std::size_t primary_{0};
  std::size_t backup_{0};
};

TEST_F(PathFaultTest, ClientFailsOverWhenItsPathDiesNodeStaysUp) {
  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(2.0);
  auto& user = scenario_.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(user.current_node().has_value());
  const std::size_t current = *scenario_.node_index(*user.current_node());

  // Sever only this client's path to its node, both directions, forever.
  faults_.partition(user.id(), scenario_.node_id(current), sec(6), sec(600));
  scenario_.run_until(sec(12.0));

  // The node is still running and registered — but this client moved.
  EXPECT_TRUE(scenario_.node(current).running());
  ASSERT_TRUE(user.current_node().has_value());
  EXPECT_NE(*scenario_.node_index(*user.current_node()), current);
  EXPECT_GE(user.stats().failovers, 1u);
  // And frames flow again on the new node (the rate controller is still
  // recovering from the failure backoff, so expect a reduced rate).
  scenario_.run_until(sec(16.0));
  EXPECT_GT(user.latency_series().window(sec(9), sec(16)).count(), 30u);
}

TEST_F(PathFaultTest, TransientBrownoutHealsWithoutFlapping) {
  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(2.0);
  auto& user = scenario_.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(user.current_node().has_value());

  // 600 ms brownout: shorter than keepalive_misses x period detection, so
  // the client should ride it out without a failover.
  faults_.partition(user.id(), *user.current_node(), sec(6), sec(6.6));
  scenario_.run_until(sec(12.0));
  EXPECT_EQ(user.stats().hard_failures, 0u);
  EXPECT_GT(user.latency_series().window(sec(8), sec(12)).count(), 20u);
}

TEST_F(PathFaultTest, ManagerBrownoutOnlyPausesDiscovery) {
  client::ClientConfig config;
  config.top_n = 2;
  config.probing_period = sec(2.0);
  auto& user = scenario_.add_edge_client(
      ClientSpot{"u", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();
  scenario_.run_until(sec(6.0));
  const auto frames_before = user.stats().frames_ok;

  // The manager goes dark for 10 s; the data plane must not care.
  faults_.isolate_host(HostId{0}, sec(6), sec(16));
  scenario_.run_until(sec(16.0));
  EXPECT_GT(user.stats().frames_ok, frames_before + 100);
  EXPECT_TRUE(user.current_node().has_value());
}

}  // namespace
}  // namespace eden
