// Replayed repro regression tests: every committed `.eden-repro` under
// tests/repros/ is re-run through the fuzz harness and must hold every
// oracle. The files pin exact overload-regime scenarios (burstable
// anchors, flash-crowd / diurnal / slow-leak load shapes) independent of
// future generator changes — if a regression re-breaks the admission,
// heartbeat or feedback paths in this regime, the oracles fire here
// without waiting for a sweep to rediscover the seed. Also pins the repro
// parser's backward compatibility: the files are v3 on-disk artifacts.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/repro.h"
#include "harness/parallel_runner.h"

namespace eden {
namespace {

class ReproReplay : public ::testing::TestWithParam<const char*> {};

TEST_P(ReproReplay, ReplaysCleanAndDeterministically) {
  const std::string path =
      std::string(EDEN_REPROS_DIR) + "/" + GetParam() + ".eden-repro";
  const auto repro = check::load_repro(path);
  ASSERT_TRUE(repro.has_value()) << "cannot parse " << path;
  // Curation guard: these scenarios exist to exercise the overload loop.
  EXPECT_TRUE(repro->spec.load_feedback);
  bool burstable = false;
  for (const auto& n : repro->spec.nodes) burstable |= n.burstable;
  EXPECT_TRUE(burstable);

  const check::RunReport report = check::run_spec(repro->spec);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.message;
  }
  EXPECT_GT(report.frames_ok, 0u);
  EXPECT_NE(report.trace_digest, 0u);

  // The committed spec must replay bitwise-identically on any pool width.
  harness::ParallelRunner wide(4);
  std::vector<std::function<std::uint64_t()>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.emplace_back(
        [&repro] { return check::run_spec(repro->spec).trace_digest; });
  }
  for (const std::uint64_t d : wide.map(std::move(jobs))) {
    EXPECT_EQ(d, report.trace_digest);
  }
}

INSTANTIATE_TEST_SUITE_P(CommittedRepros, ReproReplay,
                         ::testing::Values("overload_flash_crowd_burstable",
                                           "overload_diurnal_wave_burstable",
                                           "overload_slow_leak_burstable"));

}  // namespace
}  // namespace eden
