// Unit tests for the centralized re-optimization baseline: initial
// assignment, periodic reaction (and its built-in lag), dead-node
// awareness, and reassignment accounting.
#include "harness/central_controller.h"

#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace eden::harness {
namespace {

class CentralControllerTest : public ::testing::Test {
 protected:
  CentralControllerTest()
      : scenario_(ScenarioConfig{.seed = 8}, NetKind::kMatrix, 20.0, 50.0,
                  0.0) {}

  std::size_t add_node(const std::string& name, int cores, double frame_ms) {
    NodeSpec spec;
    spec.name = name;
    spec.cores = cores;
    spec.base_frame_ms = frame_ms;
    return scenario_.add_node(spec);
  }

  baselines::StaticClient& add_client(const std::string& name) {
    workload::AppProfile app;
    app.adaptive_rate = false;
    app.max_fps = 10.0;
    return scenario_.add_static_client(ClientSpot{.name = name}, app);
  }

  Scenario scenario_;
};

TEST_F(CentralControllerTest, FirstRoundAssignsEveryone) {
  add_node("fast", 8, 10.0);
  add_node("slow", 1, 60.0);
  start_all_nodes(scenario_);
  scenario_.run_until(sec(1.0));

  std::vector<baselines::StaticClient*> clients;
  for (int i = 0; i < 4; ++i) {
    auto& c = add_client("u" + std::to_string(i));
    c.start(scenario_.node_id(1));  // primed anywhere
    clients.push_back(&c);
  }
  scenario_.run_until(sec(2.0));

  CentralController controller(scenario_, clients);
  controller.start();
  scenario_.run_until(sec(4.0));

  EXPECT_EQ(controller.rounds(), 1u);
  for (const auto* c : clients) {
    ASSERT_TRUE(c->current_node().has_value());
    // Light load: the solver puts everyone on the fast machine.
    EXPECT_EQ(*c->current_node(), scenario_.node_id(0));
  }
  EXPECT_GE(controller.reassignments(), 4u);
  controller.stop();
}

TEST_F(CentralControllerTest, ReassignmentWaitsForNextRound) {
  const auto fast = add_node("fast", 8, 10.0);
  add_node("slow", 2, 40.0);
  start_all_nodes(scenario_);
  scenario_.run_until(sec(1.0));

  std::vector<baselines::StaticClient*> clients;
  auto& c = add_client("u");
  c.start(scenario_.node_id(fast));
  clients.push_back(&c);
  scenario_.run_until(sec(2.0));

  CentralController::Options options;
  options.period = sec(10.0);
  CentralController controller(scenario_, clients, options);
  controller.start();
  scenario_.run_until(sec(4.0));
  ASSERT_EQ(*c.current_node(), scenario_.node_id(fast));

  // Fast node dies at t=5; the controller is blind until its next round.
  scenario_.stop_node(fast, false);
  scenario_.run_until(sec(9.0));
  EXPECT_EQ(*c.current_node(), scenario_.node_id(fast));  // still stale
  scenario_.run_until(sec(16.0));  // next round at ~t=13
  EXPECT_EQ(*c.current_node(), scenario_.node_id(1));
  EXPECT_GE(controller.rounds(), 2u);
  controller.stop();
}

TEST_F(CentralControllerTest, NoReassignmentWhenAlreadyOptimal) {
  add_node("only", 4, 20.0);
  start_all_nodes(scenario_);
  scenario_.run_until(sec(1.0));
  std::vector<baselines::StaticClient*> clients;
  auto& c = add_client("u");
  c.start(scenario_.node_id(0));
  clients.push_back(&c);
  scenario_.run_until(sec(2.0));

  CentralController::Options options;
  options.period = sec(3.0);
  CentralController controller(scenario_, clients, options);
  controller.start();
  scenario_.run_until(sec(12.0));
  EXPECT_GE(controller.rounds(), 3u);
  EXPECT_EQ(controller.reassignments(), 0u);  // already on the only node
  controller.stop();
}

TEST_F(CentralControllerTest, StopHaltsRounds) {
  add_node("n", 2, 20.0);
  start_all_nodes(scenario_);
  std::vector<baselines::StaticClient*> clients;
  auto& c = add_client("u");
  c.start(scenario_.node_id(0));
  clients.push_back(&c);

  CentralController::Options options;
  options.period = sec(2.0);
  CentralController controller(scenario_, clients, options);
  controller.start();
  scenario_.run_until(sec(5.0));
  const auto rounds = controller.rounds();
  controller.stop();
  scenario_.run_until(sec(20.0));
  EXPECT_EQ(controller.rounds(), rounds);
}

}  // namespace
}  // namespace eden::harness
