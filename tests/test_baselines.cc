// Unit tests for baseline assigners and the analytic latency model.
#include <gtest/gtest.h>

#include <map>

#include "baselines/assigners.h"
#include "baselines/latency_model.h"

namespace eden::baselines {
namespace {

NodeInfo make_node(std::uint32_t id, double lat, double lon, int cores = 4,
                   double frame_ms = 30.0, bool dedicated = false,
                   bool is_cloud = false) {
  NodeInfo info;
  info.id = NodeId{id};
  info.position = {lat, lon};
  info.cores = cores;
  info.base_frame_ms = frame_ms;
  info.dedicated = dedicated;
  info.is_cloud = is_cloud;
  return info;
}

TEST(GeoProximity, PicksClosestNonCloud) {
  GeoProximityAssigner assigner({
      make_node(1, 45.00, -93.00),
      make_node(2, 44.98, -93.26),
      make_node(3, 44.98, -93.27, 64, 10.0, false, /*is_cloud=*/true),
  });
  const auto picked = assigner.assign({44.9778, -93.2650});
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(*picked, NodeId{2});  // cloud node 3 is closer but excluded
}

TEST(GeoProximity, EmptyPoolReturnsNothing) {
  GeoProximityAssigner assigner({});
  EXPECT_FALSE(assigner.assign({0, 0}).has_value());
}

TEST(GeoProximity, IgnoresCapacityEntirely) {
  // The whole point of the baseline: a slow node wins if it's closer.
  GeoProximityAssigner assigner({
      make_node(1, 44.98, -93.26, 1, 200.0),  // slow but close
      make_node(2, 45.20, -93.00, 16, 10.0),  // fast but far
  });
  EXPECT_EQ(*assigner.assign({44.9778, -93.2650}), NodeId{1});
}

TEST(Wrr, DistributesProportionallyToWeight) {
  // weights: node1 = 4/30, node2 = 8/30 -> 1:2 split.
  WeightedRoundRobinAssigner assigner({
      make_node(1, 0, 0, 4, 30.0),
      make_node(2, 0, 0, 8, 30.0),
  });
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 300; ++i) ++counts[assigner.assign({0, 0})->value];
  EXPECT_EQ(counts[1], 100);
  EXPECT_EQ(counts[2], 200);
}

TEST(Wrr, ExcludesCloud) {
  WeightedRoundRobinAssigner assigner({
      make_node(1, 0, 0),
      make_node(2, 0, 0, 64, 10.0, false, /*is_cloud=*/true),
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*assigner.assign({0, 0}), NodeId{1});
}

TEST(Wrr, DedicatedOnlyRestrictsPool) {
  WeightedRoundRobinAssigner assigner(
      {
          make_node(1, 0, 0, 8, 20.0, /*dedicated=*/false),
          make_node(2, 0, 0, 4, 30.0, /*dedicated=*/true),
          make_node(3, 0, 0, 4, 30.0, /*dedicated=*/true),
      },
      /*dedicated_only=*/true);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 100; ++i) ++counts[assigner.assign({0, 0})->value];
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 50);
  EXPECT_EQ(counts[3], 50);
}

TEST(Wrr, ResetRestartsSequence) {
  WeightedRoundRobinAssigner assigner({
      make_node(1, 0, 0, 4, 30.0),
      make_node(2, 0, 0, 8, 30.0),
  });
  const auto first = *assigner.assign({0, 0});
  assigner.assign({0, 0});
  assigner.reset();
  EXPECT_EQ(*assigner.assign({0, 0}), first);
}

TEST(Wrr, EmptyPool) {
  WeightedRoundRobinAssigner assigner({}, true);
  EXPECT_FALSE(assigner.assign({0, 0}).has_value());
}

TEST(ClosestCloud, PicksNearestCloudOnly) {
  ClosestCloudAssigner assigner({
      make_node(1, 44.98, -93.26),  // edge, ignored
      make_node(2, 39.96, -82.99, 4, 30.0, false, true),   // us-east-2
      make_node(3, 37.35, -121.95, 4, 30.0, false, true),  // us-west
  });
  EXPECT_EQ(*assigner.assign({44.9778, -93.2650}), NodeId{2});
}

TEST(ErlangC, KnownValues) {
  // Single server: C = rho.
  EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-9);
  // Saturated or invalid loads.
  EXPECT_DOUBLE_EQ(erlang_c(2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(erlang_c(4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_c(0, 1.0), 1.0);
  // M/M/2 with rho = 0.5 (a = 1): C = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-9);
}

TEST(ErlangC, DecreasesWithMoreServers) {
  for (int c = 1; c < 8; ++c) {
    EXPECT_GT(erlang_c(c, 0.8 * c), erlang_c(c + 1, 0.8 * c));
  }
}

TEST(PredictedProc, IdleNodeIsBaseTime) {
  EXPECT_DOUBLE_EQ(predicted_proc_ms(make_node(1, 0, 0, 4, 30.0), 0, 20.0), 30.0);
}

TEST(PredictedProc, MonotoneInUsers) {
  const auto node = make_node(1, 0, 0, 4, 30.0);
  double prev = 0;
  for (int k = 1; k <= 12; ++k) {
    const double d = predicted_proc_ms(node, k, 20.0);
    EXPECT_GE(d, prev - 1e-9) << "k=" << k;
    prev = d;
  }
}

TEST(PredictedProc, SaturationIsPenalisedHeavily) {
  const auto node = make_node(1, 0, 0, 1, 30.0);
  // 1 core, 30 ms/frame -> capacity ~33 fps; 3 users x 20 fps = saturated.
  const double unloaded = predicted_proc_ms(node, 1, 20.0);
  const double saturated = predicted_proc_ms(node, 3, 20.0);
  EXPECT_GT(saturated, 2.5 * unloaded);
}

TEST(PredictedProc, BurstableThrottlesAboveBaseline) {
  auto node = make_node(1, 0, 0, 4, 30.0);
  auto burstable = node;
  burstable.burstable = true;
  burstable.burst_baseline = 0.4;
  // 4 users x 20 fps x 30 ms = 2.4 busy cores > 0.4 x 4 = 1.6 baseline.
  EXPECT_GT(predicted_proc_ms(burstable, 4, 20.0),
            predicted_proc_ms(node, 4, 20.0));
  // Light load stays under the baseline share: no throttle.
  EXPECT_NEAR(predicted_proc_ms(burstable, 1, 10.0),
              predicted_proc_ms(node, 1, 10.0), 1e-9);
}

TEST(AverageLatency, SingleUserSumsComponents) {
  PredictInput input;
  input.nodes = {make_node(1, 0, 0, 4, 30.0)};
  input.rtt_ms = {{12.0}};
  input.trans_ms = {{3.0}};
  input.fps = 20.0;
  const double avg = average_latency_ms(input, {0});
  EXPECT_NEAR(avg, 12.0 + 3.0 + predicted_proc_ms(input.nodes[0], 1, 20.0),
              1e-9);
}

TEST(AverageLatency, SpreadingBeatsPiling) {
  // Two identical 1-core nodes, two users: splitting must beat stacking.
  PredictInput input;
  input.nodes = {make_node(1, 0, 0, 1, 30.0), make_node(2, 0, 0, 1, 30.0)};
  input.rtt_ms = {{10.0, 10.0}, {10.0, 10.0}};
  input.trans_ms = {{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_LT(average_latency_ms(input, {0, 1}), average_latency_ms(input, {0, 0}));
}

TEST(AverageLatency, EmptyInput) {
  PredictInput input;
  EXPECT_DOUBLE_EQ(average_latency_ms(input, {}), 0.0);
}

}  // namespace
}  // namespace eden::baselines
