// Unit tests for the wire codec: primitive round trips, message round
// trips, and fail-soft behaviour on malformed input.
#include <gtest/gtest.h>

#include "rpc/messages.h"
#include "rpc/serialize.h"

namespace eden::rpc {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, NegativeAndSpecialDoubles) {
  Writer w;
  w.f64(-0.0);
  w.f64(1e308);
  w.f64(-42.5);
  Reader r(w.data());
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_DOUBLE_EQ(r.f64(), 1e308);
  EXPECT_DOUBLE_EQ(r.f64(), -42.5);
}

TEST(Serialize, ReaderFailsSoftOnTruncation) {
  Writer w;
  w.u64(42);
  Reader r(w.data().data(), 3);  // truncated
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay zero and ok stays false.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, ReaderRejectsOverlongString) {
  Writer w;
  w.u32(1000);  // declared length far beyond the buffer
  Reader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Messages, NodeStatusRoundTrip) {
  net::NodeStatus original;
  original.node = NodeId{42};
  original.geohash = "9zvxvf";
  original.cores = 8;
  original.base_frame_ms = 24.5;
  original.attached_users = 3;
  original.utilization = 0.75;
  original.dedicated = true;
  original.is_cloud = false;
  original.network_tag = "isp-b";
  original.endpoint = "127.0.0.1:9999";
  original.app_types = {"ar-overlay", "video-seg"};
  original.queue_depth = 6;
  original.burst_credits = 2.5;
  original.p95_proc_ms = 41.75;

  Writer w;
  encode(w, original);
  Reader r(w.data());
  const auto decoded = decode_node_status(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded.node, original.node);
  EXPECT_EQ(decoded.geohash, original.geohash);
  EXPECT_EQ(decoded.cores, original.cores);
  EXPECT_DOUBLE_EQ(decoded.base_frame_ms, original.base_frame_ms);
  EXPECT_EQ(decoded.attached_users, original.attached_users);
  EXPECT_DOUBLE_EQ(decoded.utilization, original.utilization);
  EXPECT_EQ(decoded.dedicated, original.dedicated);
  EXPECT_EQ(decoded.is_cloud, original.is_cloud);
  EXPECT_EQ(decoded.network_tag, original.network_tag);
  EXPECT_EQ(decoded.endpoint, original.endpoint);
  EXPECT_EQ(decoded.app_types, original.app_types);
  EXPECT_EQ(decoded.queue_depth, original.queue_depth);
  EXPECT_DOUBLE_EQ(decoded.burst_credits, original.burst_credits);
  EXPECT_DOUBLE_EQ(decoded.p95_proc_ms, original.p95_proc_ms);
}

TEST(Messages, DiscoveryRoundTrip) {
  net::DiscoveryRequest request;
  request.client = ClientId{7};
  request.geohash = "9zvxg1";
  request.network_tag = "isp-a";
  request.top_n = 5;
  Writer w;
  encode(w, request);
  Reader r(w.data());
  const auto decoded = decode_discovery_request(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded.client, request.client);
  EXPECT_EQ(decoded.geohash, request.geohash);
  EXPECT_EQ(decoded.network_tag, request.network_tag);
  EXPECT_EQ(decoded.top_n, request.top_n);

  net::DiscoveryResponse response;
  for (std::uint32_t i = 0; i < 3; ++i) {
    response.candidates.push_back(net::CandidateInfo{
        NodeId{i}, "hash" + std::to_string(i), 1.5 * i,
        "127.0.0.1:" + std::to_string(9000 + i)});
  }
  Writer w2;
  encode(w2, response);
  Reader r2(w2.data());
  const auto decoded2 = decode_discovery_response(r2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(decoded2.candidates.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded2.candidates[i].node, NodeId{i});
    EXPECT_EQ(decoded2.candidates[i].geohash, "hash" + std::to_string(i));
    EXPECT_DOUBLE_EQ(decoded2.candidates[i].score, 1.5 * i);
    EXPECT_EQ(decoded2.candidates[i].endpoint,
              "127.0.0.1:" + std::to_string(9000 + i));
  }
}

TEST(Messages, EmptyDiscoveryResponse) {
  net::DiscoveryResponse response;
  Writer w;
  encode(w, response);
  Reader r(w.data());
  EXPECT_TRUE(decode_discovery_response(r).candidates.empty());
  EXPECT_TRUE(r.ok());
}

TEST(Messages, ProcessProbeRoundTrip) {
  net::ProcessProbeResponse original{45.5, 38.2, 4, 123456789ull};
  Writer w;
  encode(w, original);
  Reader r(w.data());
  const auto decoded = decode_process_probe_response(r);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(decoded.whatif_ms, 45.5);
  EXPECT_DOUBLE_EQ(decoded.current_ms, 38.2);
  EXPECT_EQ(decoded.attached_users, 4);
  EXPECT_EQ(decoded.seq_num, 123456789ull);
}

TEST(Messages, JoinRoundTrip) {
  net::JoinRequest request{ClientId{9}, 77, 18.5};
  Writer w;
  encode(w, request);
  Reader r(w.data());
  const auto decoded = decode_join_request(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded.client, ClientId{9});
  EXPECT_EQ(decoded.seq_num, 77u);
  EXPECT_DOUBLE_EQ(decoded.rate_fps, 18.5);

  net::JoinResponse response{true, 78};
  Writer w2;
  encode(w2, response);
  Reader r2(w2.data());
  const auto decoded2 = decode_join_response(r2);
  EXPECT_TRUE(decoded2.accepted);
  EXPECT_EQ(decoded2.seq_num, 78u);
}

TEST(Messages, FrameRoundTrip) {
  net::FrameRequest request{ClientId{3}, 555, 20'000};
  Writer w;
  encode(w, request);
  Reader r(w.data());
  const auto decoded = decode_frame_request(r);
  EXPECT_EQ(decoded.client, ClientId{3});
  EXPECT_EQ(decoded.frame_id, 555u);
  EXPECT_DOUBLE_EQ(decoded.bytes, 20'000);

  net::FrameResponse response{555, 31.25};
  response.dropped = true;
  response.redisc_epoch = 12;
  Writer w2;
  encode(w2, response);
  Reader r2(w2.data());
  const auto decoded2 = decode_frame_response(r2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(decoded2.frame_id, 555u);
  EXPECT_DOUBLE_EQ(decoded2.proc_ms, 31.25);
  EXPECT_TRUE(decoded2.dropped);
  EXPECT_EQ(decoded2.redisc_epoch, 12u);
}

TEST(Messages, ResponseTypeSetsHighBit) {
  EXPECT_EQ(response_type(MessageType::kJoin),
            static_cast<std::uint16_t>(MessageType::kJoin) | 0x8000);
}

// One encoded exemplar of every wire message plus its decoder, so the
// truncation and fuzz sweeps below cover the whole protocol surface.
struct WireCase {
  const char* name;
  std::vector<std::uint8_t> bytes;
  void (*decode)(Reader&);
};

std::vector<WireCase> all_wire_cases() {
  std::vector<WireCase> cases;
  {
    net::NodeStatus v;
    v.node = NodeId{42};
    v.geohash = "9zvxvf";
    v.network_tag = "isp-a";
    v.endpoint = "127.0.0.1:9000";
    v.app_types = {"ar-overlay", "video-seg"};
    v.queue_depth = 3;
    v.burst_credits = 1.5;
    v.p95_proc_ms = 22.0;
    Writer w;
    encode(w, v);
    cases.push_back({"NodeStatus", w.data(),
                     [](Reader& r) { (void)decode_node_status(r); }});
  }
  {
    net::DiscoveryRequest v;
    v.client = ClientId{7};
    v.geohash = "9zvxg1";
    v.network_tag = "isp-b";
    v.top_n = 5;
    v.app_type = "ar-overlay";
    Writer w;
    encode(w, v);
    cases.push_back({"DiscoveryRequest", w.data(),
                     [](Reader& r) { (void)decode_discovery_request(r); }});
  }
  {
    net::DiscoveryResponse v;
    v.candidates.push_back(
        net::CandidateInfo{NodeId{1}, "9zvxvf", 0.5, "127.0.0.1:9001"});
    v.candidates.push_back(
        net::CandidateInfo{NodeId{2}, "9zvxg1", 0.25, "127.0.0.1:9002"});
    Writer w;
    encode(w, v);
    cases.push_back({"DiscoveryResponse", w.data(),
                     [](Reader& r) { (void)decode_discovery_response(r); }});
  }
  {
    net::ProcessProbeResponse v{45.5, 38.2, 4, 123456789ull};
    Writer w;
    encode(w, v);
    cases.push_back(
        {"ProcessProbeResponse", w.data(),
         [](Reader& r) { (void)decode_process_probe_response(r); }});
  }
  {
    net::JoinRequest v{ClientId{9}, 77, 18.5};
    Writer w;
    encode(w, v);
    cases.push_back({"JoinRequest", w.data(),
                     [](Reader& r) { (void)decode_join_request(r); }});
  }
  {
    net::JoinResponse v{true, 78};
    Writer w;
    encode(w, v);
    cases.push_back({"JoinResponse", w.data(),
                     [](Reader& r) { (void)decode_join_response(r); }});
  }
  {
    net::FrameRequest v{ClientId{3}, 555, 20'000, 1.25};
    Writer w;
    encode(w, v);
    cases.push_back({"FrameRequest", w.data(),
                     [](Reader& r) { (void)decode_frame_request(r); }});
  }
  {
    net::FrameResponse v{555, 31.25};
    v.dropped = true;
    v.redisc_epoch = 3;
    Writer w;
    encode(w, v);
    cases.push_back({"FrameResponse", w.data(),
                     [](Reader& r) { (void)decode_frame_response(r); }});
  }
  return cases;
}

TEST(Messages, EveryTypeFailsSoftAtEveryTruncationPoint) {
  // Chop every message's encoding at every possible point: decode must
  // never crash and must flag !ok() for any strict prefix (each decoder
  // reads every field, so a short buffer always runs out of bytes).
  for (const auto& c : all_wire_cases()) {
    ASSERT_FALSE(c.bytes.empty()) << c.name;
    for (std::size_t len = 0; len < c.bytes.size(); ++len) {
      Reader r(c.bytes.data(), len);
      c.decode(r);
      EXPECT_FALSE(r.ok()) << c.name << " prefix length " << len;
    }
    // The full encoding still decodes clean.
    Reader full(c.bytes.data(), c.bytes.size());
    c.decode(full);
    EXPECT_TRUE(full.ok()) << c.name;
  }
}

TEST(Messages, GarbageBytesNeverCrashDecoders) {
  // Random byte soup through every decoder: fail-soft means no crash, no
  // unbounded allocation (string/array reads are bounded by remaining()).
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const auto cases = all_wire_cases();
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> noise(static_cast<std::size_t>(next() % 512));
    for (auto& b : noise) b = static_cast<std::uint8_t>(next());
    for (const auto& c : cases) {
      Reader r(noise.data(), noise.size());
      c.decode(r);  // must not crash; ok() may be anything
    }
  }
}

TEST(Messages, BitFlippedEncodingsNeverCrashDecoders) {
  // Flip each byte of a valid encoding in turn — decoders must stay
  // memory-safe even when the corruption lands in a length field.
  for (const auto& c : all_wire_cases()) {
    for (std::size_t i = 0; i < c.bytes.size(); ++i) {
      std::vector<std::uint8_t> mutated = c.bytes;
      mutated[i] ^= 0xFF;
      Reader r(mutated.data(), mutated.size());
      c.decode(r);  // must not crash
    }
  }
}

}  // namespace
}  // namespace eden::rpc
