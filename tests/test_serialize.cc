// Unit tests for the wire codec: primitive round trips, message round
// trips, and fail-soft behaviour on malformed input.
#include <gtest/gtest.h>

#include "rpc/messages.h"
#include "rpc/serialize.h"

namespace eden::rpc {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, NegativeAndSpecialDoubles) {
  Writer w;
  w.f64(-0.0);
  w.f64(1e308);
  w.f64(-42.5);
  Reader r(w.data());
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_DOUBLE_EQ(r.f64(), 1e308);
  EXPECT_DOUBLE_EQ(r.f64(), -42.5);
}

TEST(Serialize, ReaderFailsSoftOnTruncation) {
  Writer w;
  w.u64(42);
  Reader r(w.data().data(), 3);  // truncated
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay zero and ok stays false.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, ReaderRejectsOverlongString) {
  Writer w;
  w.u32(1000);  // declared length far beyond the buffer
  Reader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Messages, NodeStatusRoundTrip) {
  net::NodeStatus original;
  original.node = NodeId{42};
  original.geohash = "9zvxvf";
  original.cores = 8;
  original.base_frame_ms = 24.5;
  original.attached_users = 3;
  original.utilization = 0.75;
  original.dedicated = true;
  original.is_cloud = false;
  original.network_tag = "isp-b";
  original.endpoint = "127.0.0.1:9999";

  Writer w;
  encode(w, original);
  Reader r(w.data());
  const auto decoded = decode_node_status(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded.node, original.node);
  EXPECT_EQ(decoded.geohash, original.geohash);
  EXPECT_EQ(decoded.cores, original.cores);
  EXPECT_DOUBLE_EQ(decoded.base_frame_ms, original.base_frame_ms);
  EXPECT_EQ(decoded.attached_users, original.attached_users);
  EXPECT_DOUBLE_EQ(decoded.utilization, original.utilization);
  EXPECT_EQ(decoded.dedicated, original.dedicated);
  EXPECT_EQ(decoded.is_cloud, original.is_cloud);
  EXPECT_EQ(decoded.network_tag, original.network_tag);
  EXPECT_EQ(decoded.endpoint, original.endpoint);
}

TEST(Messages, DiscoveryRoundTrip) {
  net::DiscoveryRequest request;
  request.client = ClientId{7};
  request.geohash = "9zvxg1";
  request.network_tag = "isp-a";
  request.top_n = 5;
  Writer w;
  encode(w, request);
  Reader r(w.data());
  const auto decoded = decode_discovery_request(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded.client, request.client);
  EXPECT_EQ(decoded.geohash, request.geohash);
  EXPECT_EQ(decoded.network_tag, request.network_tag);
  EXPECT_EQ(decoded.top_n, request.top_n);

  net::DiscoveryResponse response;
  for (std::uint32_t i = 0; i < 3; ++i) {
    response.candidates.push_back(net::CandidateInfo{
        NodeId{i}, "hash" + std::to_string(i), 1.5 * i,
        "127.0.0.1:" + std::to_string(9000 + i)});
  }
  Writer w2;
  encode(w2, response);
  Reader r2(w2.data());
  const auto decoded2 = decode_discovery_response(r2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(decoded2.candidates.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded2.candidates[i].node, NodeId{i});
    EXPECT_EQ(decoded2.candidates[i].geohash, "hash" + std::to_string(i));
    EXPECT_DOUBLE_EQ(decoded2.candidates[i].score, 1.5 * i);
    EXPECT_EQ(decoded2.candidates[i].endpoint,
              "127.0.0.1:" + std::to_string(9000 + i));
  }
}

TEST(Messages, EmptyDiscoveryResponse) {
  net::DiscoveryResponse response;
  Writer w;
  encode(w, response);
  Reader r(w.data());
  EXPECT_TRUE(decode_discovery_response(r).candidates.empty());
  EXPECT_TRUE(r.ok());
}

TEST(Messages, ProcessProbeRoundTrip) {
  net::ProcessProbeResponse original{45.5, 38.2, 4, 123456789ull};
  Writer w;
  encode(w, original);
  Reader r(w.data());
  const auto decoded = decode_process_probe_response(r);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(decoded.whatif_ms, 45.5);
  EXPECT_DOUBLE_EQ(decoded.current_ms, 38.2);
  EXPECT_EQ(decoded.attached_users, 4);
  EXPECT_EQ(decoded.seq_num, 123456789ull);
}

TEST(Messages, JoinRoundTrip) {
  net::JoinRequest request{ClientId{9}, 77, 18.5};
  Writer w;
  encode(w, request);
  Reader r(w.data());
  const auto decoded = decode_join_request(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded.client, ClientId{9});
  EXPECT_EQ(decoded.seq_num, 77u);
  EXPECT_DOUBLE_EQ(decoded.rate_fps, 18.5);

  net::JoinResponse response{true, 78};
  Writer w2;
  encode(w2, response);
  Reader r2(w2.data());
  const auto decoded2 = decode_join_response(r2);
  EXPECT_TRUE(decoded2.accepted);
  EXPECT_EQ(decoded2.seq_num, 78u);
}

TEST(Messages, FrameRoundTrip) {
  net::FrameRequest request{ClientId{3}, 555, 20'000};
  Writer w;
  encode(w, request);
  Reader r(w.data());
  const auto decoded = decode_frame_request(r);
  EXPECT_EQ(decoded.client, ClientId{3});
  EXPECT_EQ(decoded.frame_id, 555u);
  EXPECT_DOUBLE_EQ(decoded.bytes, 20'000);

  net::FrameResponse response{555, 31.25};
  Writer w2;
  encode(w2, response);
  Reader r2(w2.data());
  const auto decoded2 = decode_frame_response(r2);
  EXPECT_EQ(decoded2.frame_id, 555u);
  EXPECT_DOUBLE_EQ(decoded2.proc_ms, 31.25);
}

TEST(Messages, ResponseTypeSetsHighBit) {
  EXPECT_EQ(response_type(MessageType::kJoin),
            static_cast<std::uint16_t>(MessageType::kJoin) | 0x8000);
}

TEST(Messages, TruncatedMessageFailsSoft) {
  net::NodeStatus status;
  status.geohash = "9zvxvf";
  Writer w;
  encode(w, status);
  // Chop the buffer at every possible point: decode must never crash and
  // must flag !ok() for any strict prefix.
  for (std::size_t len = 0; len < w.data().size(); ++len) {
    Reader r(w.data().data(), len);
    (void)decode_node_status(r);
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

}  // namespace
}  // namespace eden::rpc
