// Unit + property tests for the §V-D2 churn model.
#include "churn/churn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eden::churn {
namespace {

TEST(WeibullScale, ReproducesMean) {
  const double scale = weibull_scale_for_mean(50.0, 1.5);
  // mean = scale * Gamma(1 + 1/1.5)
  EXPECT_NEAR(scale * std::tgamma(1.0 + 1.0 / 1.5), 50.0, 1e-9);
}

TEST(GenerateChurn, Deterministic) {
  ChurnConfig config;
  Rng a(42);
  Rng b(42);
  const auto s1 = generate_churn(config, a);
  const auto s2 = generate_churn(config, b);
  ASSERT_EQ(s1.events.size(), s2.events.size());
  for (std::size_t i = 0; i < s1.events.size(); ++i) {
    EXPECT_EQ(s1.events[i].at, s2.events[i].at);
    EXPECT_EQ(s1.events[i].kind, s2.events[i].kind);
    EXPECT_EQ(s1.events[i].node_index, s2.events[i].node_index);
  }
}

TEST(GenerateChurn, EventsSortedAndWithinHorizon) {
  ChurnConfig config;
  Rng rng(7);
  const auto schedule = generate_churn(config, rng);
  SimTime prev = 0;
  for (const auto& event : schedule.events) {
    EXPECT_GE(event.at, prev);
    EXPECT_LT(event.at, config.horizon);
    prev = event.at;
  }
}

TEST(GenerateChurn, EveryLeaveHasEarlierJoin) {
  ChurnConfig config;
  Rng rng(9);
  const auto schedule = generate_churn(config, rng);
  for (std::size_t i = 0; i < schedule.total_nodes; ++i) {
    const auto [join, leave] = schedule.node_span(i);
    EXPECT_GE(join, 0);
    if (leave >= 0) {
      EXPECT_GT(leave, join);
    }
  }
}

TEST(GenerateChurn, AliveCountNeverNegative) {
  ChurnConfig config;
  Rng rng(11);
  const auto schedule = generate_churn(config, rng);
  int alive = 0;
  for (const auto& event : schedule.events) {
    alive += event.kind == ChurnEventKind::kJoin ? 1 : -1;
    EXPECT_GE(alive, 0);
  }
}

TEST(GenerateChurn, InitialNodesStartAtZero) {
  ChurnConfig config;
  config.initial_nodes = 5;
  Rng rng(13);
  const auto schedule = generate_churn(config, rng);
  EXPECT_GE(schedule.total_nodes, 5u);
  EXPECT_EQ(schedule.alive_at(0), 5);
}

TEST(GenerateChurn, MaxNodesCaps) {
  ChurnConfig config;
  config.max_nodes = 10;
  config.joins_per_period = 20.0;  // would otherwise produce ~120 nodes
  Rng rng(17);
  const auto schedule = generate_churn(config, rng);
  EXPECT_EQ(schedule.total_nodes, 10u);
}

TEST(GenerateChurn, StaircaseMatchesAliveAt) {
  ChurnConfig config;
  Rng rng(19);
  const auto schedule = generate_churn(config, rng);
  for (const auto& [t, alive] : schedule.staircase()) {
    EXPECT_EQ(schedule.alive_at(t), alive);
  }
}

TEST(Staircase, CollapsesSimultaneousEventsToFinalCount) {
  // Regression: simultaneous events used to emit one staircase entry per
  // event, producing duplicate timestamps with transient alive-counts
  // (e.g. 3 then 1 both "at" t=10). Ties must collapse to the final count.
  ChurnSchedule schedule;
  schedule.total_nodes = 4;
  schedule.events = {
      {sec(0.0), ChurnEventKind::kJoin, 0},
      {sec(0.0), ChurnEventKind::kJoin, 1},   // two joins at the same instant
      {sec(10.0), ChurnEventKind::kJoin, 2},
      {sec(10.0), ChurnEventKind::kJoin, 3},  // join + two leaves at t=10
      {sec(10.0), ChurnEventKind::kLeave, 0},
      {sec(10.0), ChurnEventKind::kLeave, 1},
      {sec(20.0), ChurnEventKind::kLeave, 2},
  };

  const auto stairs = schedule.staircase();
  ASSERT_EQ(stairs.size(), 3u);
  EXPECT_EQ(stairs[0], (std::pair<SimTime, int>{sec(0.0), 2}));
  EXPECT_EQ(stairs[1], (std::pair<SimTime, int>{sec(10.0), 2}));
  EXPECT_EQ(stairs[2], (std::pair<SimTime, int>{sec(20.0), 1}));

  // Timestamps strictly increase and every step agrees with alive_at().
  for (std::size_t i = 1; i < stairs.size(); ++i) {
    EXPECT_LT(stairs[i - 1].first, stairs[i].first);
  }
  for (const auto& [t, alive] : stairs) {
    EXPECT_EQ(schedule.alive_at(t), alive);
  }
}

TEST(GenerateChurn, PaperScaleProducesRoughly18Nodes) {
  // k=4 per 30s over 3 min = ~24 arrivals on average; the paper picked a
  // run with 18 total. Check the model is in that ballpark on average.
  ChurnConfig config;
  double total = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    total += static_cast<double>(generate_churn(config, rng).total_nodes);
  }
  const double avg = total / 40.0;
  EXPECT_GT(avg, 15.0);
  EXPECT_LT(avg, 32.0);
}

// Property: average sampled lifetime across many nodes approaches the
// configured Weibull mean.
class LifetimeSweep : public ::testing::TestWithParam<double> {};

TEST_P(LifetimeSweep, MeanLifetimeMatches) {
  ChurnConfig config;
  config.lifetime_mean_sec = GetParam();
  config.horizon = sec(100000.0);  // long horizon so few lifetimes truncate
  config.joins_per_period = 2.0;
  Rng rng(23);
  const auto schedule = generate_churn(config, rng);
  double total = 0;
  int counted = 0;
  for (std::size_t i = 0; i < schedule.total_nodes; ++i) {
    const auto [join, leave] = schedule.node_span(i);
    if (leave >= 0) {
      total += to_sec(leave - join);
      ++counted;
    }
  }
  ASSERT_GT(counted, 1000);
  EXPECT_NEAR(total / counted, GetParam(), GetParam() * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Means, LifetimeSweep,
                         ::testing::Values(20.0, 50.0, 120.0));

}  // namespace
}  // namespace eden::churn
