// Unit tests for streaming statistics, sample percentiles/CDFs and
// time-series windows.
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace eden {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesCombinedStream) {
  Rng rng(3);
  StreamingStats a;
  StreamingStats b;
  StreamingStats combined;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(10, 3);
    (i % 2 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats a;
  StreamingStats b;
  b.add(5.0);
  a.merge(b);  // empty += nonempty
  EXPECT_EQ(a.count(), 1u);
  StreamingStats c;
  a.merge(c);  // nonempty += empty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Samples, PercentileSingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(Samples, PercentileClampsOutOfRangeP) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(150), 2.0);
}

TEST(Samples, CdfIsMonotoneAndEndsAtOne) {
  Samples s;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform(0, 50));
  const auto cdf = s.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev_v = -1;
  double prev_f = 0;
  for (const auto& [v, f] : cdf) {
    EXPECT_GT(v, prev_v);
    EXPECT_GT(f, prev_f);
    prev_v = v;
    prev_f = f;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Samples, CdfCollapsesDuplicates) {
  Samples s;
  s.add(1.0);
  s.add(1.0);
  s.add(2.0);
  const auto cdf = s.cdf();
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 2.0 / 3.0, 1e-12);
}

TEST(Samples, AddAfterSortInvalidatesCache) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(TimeSeries, WindowSelectsHalfOpenRange) {
  TimeSeries ts;
  ts.add(msec(10), 1.0);
  ts.add(msec(20), 2.0);
  ts.add(msec(30), 3.0);
  const auto w = ts.window(msec(10), msec(30));
  EXPECT_EQ(w.count(), 2u);
  EXPECT_DOUBLE_EQ(w.mean(), 1.5);
}

TEST(TimeSeries, BucketedCarriesForward) {
  TimeSeries ts;
  ts.add(msec(5), 10.0);
  ts.add(msec(25), 30.0);
  const auto buckets = ts.bucketed(0, msec(40), msec(10));
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].second, 10.0);
  EXPECT_DOUBLE_EQ(buckets[1].second, 10.0);  // empty bucket repeats
  EXPECT_DOUBLE_EQ(buckets[2].second, 30.0);
  EXPECT_DOUBLE_EQ(buckets[3].second, 30.0);
}

TEST(TimeSeries, BucketedLeadingNaN) {
  TimeSeries ts;
  ts.add(msec(15), 7.0);
  const auto buckets = ts.bucketed(0, msec(20), msec(10));
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_TRUE(std::isnan(buckets[0].second));
  EXPECT_DOUBLE_EQ(buckets[1].second, 7.0);
}

TEST(TimeSeries, BucketedInvalidInputs) {
  TimeSeries ts;
  EXPECT_TRUE(ts.bucketed(0, msec(10), 0).empty());
  EXPECT_TRUE(ts.bucketed(msec(10), msec(5), msec(1)).empty());
}

TEST(TimeSeries, WindowAndBucketedMatchNaiveScan) {
  // The lower_bound fast path must agree exactly with the naive
  // full-vector scan it replaced — including duplicate timestamps and
  // points outside the queried range on both sides.
  TimeSeries ts;
  Rng rng(77);
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    // ~25% duplicates: several frames can complete at the same instant.
    if (rng.uniform() > 0.25) t += msec(rng.uniform() * 20.0);
    ts.add(t, rng.uniform() * 100.0);
  }

  const auto naive_window = [&](SimTime begin, SimTime end) {
    StreamingStats stats;
    for (const auto& [pt, pv] : ts.points()) {
      if (pt >= begin && pt < end) stats.add(pv);
    }
    return stats;
  };

  const SimTime begin = msec(500);
  const SimTime end = msec(4500);
  const SimDuration bucket = msec(70);
  for (SimTime b = begin; b < end; b += bucket) {
    const auto fast = ts.window(b, b + bucket);
    const auto naive = naive_window(b, b + bucket);
    ASSERT_EQ(fast.count(), naive.count());
    EXPECT_DOUBLE_EQ(fast.mean(), naive.mean());
    EXPECT_DOUBLE_EQ(fast.variance(), naive.variance());
  }

  const auto fast = ts.bucketed(begin, end, bucket);
  std::size_t i = 0;
  double last = std::numeric_limits<double>::quiet_NaN();
  for (SimTime b = begin; b < end; b += bucket, ++i) {
    const auto naive = naive_window(b, b + bucket);
    if (naive.count() > 0) last = naive.mean();
    ASSERT_LT(i, fast.size());
    EXPECT_EQ(fast[i].first, b);
    if (std::isnan(last)) {
      EXPECT_TRUE(std::isnan(fast[i].second));
    } else {
      EXPECT_DOUBLE_EQ(fast[i].second, last);
    }
  }
  EXPECT_EQ(i, fast.size());
}

}  // namespace
}  // namespace eden
