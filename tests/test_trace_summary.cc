// obs::trace_summary against hand-built JSONL: parsing (including
// malformed lines), event counts, attachment timelines, failover latency
// aggregation and histogram bucketing — the analytics behind eden_trace.
#include <gtest/gtest.h>

#include <string>

#include "common/stats.h"
#include "obs/trace.h"
#include "obs/trace_summary.h"

namespace eden::obs {
namespace {

std::string line(SimTime at, EventKind kind, std::uint32_t actor,
                 std::uint32_t subject = HostId::kInvalid,
                 std::uint64_t span = 0, double value = 0.0) {
  return to_jsonl_line(TraceEvent{at, kind, HostId{actor}, HostId{subject},
                                  span, value}) +
         "\n";
}

std::string sample_trace() {
  std::string text;
  text += line(sec(1.0), EventKind::kNodeRegister, 1);
  text += line(sec(1.5), EventKind::kJoinAccept, 10, 1, 1, 12.5);
  text += line(sec(2.0), EventKind::kFrameSend, 10, 1, 1);
  text += line(sec(2.1), EventKind::kFrameOk, 10, 1, 1, 80.0);
  text += line(sec(3.0), EventKind::kSwitch, 10, 2, 2);
  text += line(sec(4.0), EventKind::kFailover, 10, 1, 0, 250.0);
  text += line(sec(4.5), EventKind::kFailover, 11, 2, 0, 750.0);
  text += line(sec(5.0), EventKind::kHardFailure, 11);
  return text;
}

TEST(TraceSummary, ParsesTextAndCountsMalformedLines) {
  std::string text = sample_trace();
  text += "\n";                     // empty line: skipped silently
  text += "{\"t\":broken}\n";       // malformed: counted
  text += "total garbage";          // malformed, no trailing newline
  const ParsedTrace parsed = parse_jsonl_text(text);
  EXPECT_EQ(parsed.events.size(), 8u);
  EXPECT_EQ(parsed.malformed, 2u);
  EXPECT_EQ(parsed.events.front().kind, EventKind::kNodeRegister);
  EXPECT_EQ(parsed.events.back().kind, EventKind::kHardFailure);
  EXPECT_DOUBLE_EQ(parsed.events[3].value, 80.0);
}

TEST(TraceSummary, EmptyAndAllMalformedInputs) {
  EXPECT_TRUE(parse_jsonl_text("").events.empty());
  EXPECT_EQ(parse_jsonl_text("").malformed, 0u);
  const ParsedTrace junk = parse_jsonl_text("a\nb\nc\n");
  EXPECT_TRUE(junk.events.empty());
  EXPECT_EQ(junk.malformed, 3u);
}

TEST(TraceSummary, CountsEventsByKind) {
  const ParsedTrace parsed = parse_jsonl_text(sample_trace());
  const EventCounts counts = count_events(parsed.events);
  EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::kFailover)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::kJoinAccept)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::kFrameSend)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::kNodeDeath)], 0u);
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  EXPECT_EQ(total, parsed.events.size());
}

TEST(TraceSummary, BuildsPerClientTimelines) {
  const ParsedTrace parsed = parse_jsonl_text(sample_trace());
  const auto timelines = attachment_timelines(parsed.events);
  // kNodeRegister / kFrameSend / kFrameOk are not timeline kinds.
  ASSERT_EQ(timelines.size(), 2u);
  const auto& c10 = timelines.at(HostId{10});
  ASSERT_EQ(c10.size(), 3u);
  EXPECT_EQ(c10[0]->kind, EventKind::kJoinAccept);
  EXPECT_EQ(c10[1]->kind, EventKind::kSwitch);
  EXPECT_EQ(c10[2]->kind, EventKind::kFailover);
  EXPECT_STREQ(describe_timeline_event(*c10[1]), "switched to");
  const auto& c11 = timelines.at(HostId{11});
  ASSERT_EQ(c11.size(), 2u);
  EXPECT_EQ(c11[1]->kind, EventKind::kHardFailure);
  EXPECT_FALSE(is_timeline_kind(EventKind::kFrameOk));
  EXPECT_TRUE(is_timeline_kind(EventKind::kQosReject));
}

TEST(TraceSummary, FailoverLatenciesAndHistogram) {
  const ParsedTrace parsed = parse_jsonl_text(sample_trace());
  const Samples failover_ms = failover_latencies(parsed.events);
  ASSERT_EQ(failover_ms.count(), 2u);
  EXPECT_DOUBLE_EQ(failover_ms.min(), 250.0);
  EXPECT_DOUBLE_EQ(failover_ms.max(), 750.0);

  const auto hist = fixed_width_histogram(failover_ms, 10);
  ASSERT_EQ(hist.size(), 10u);
  EXPECT_DOUBLE_EQ(hist.front().lo, 250.0);
  EXPECT_DOUBLE_EQ(hist.back().hi, 750.0);
  EXPECT_EQ(hist.front().count, 1u);  // 250 in the first bucket
  EXPECT_EQ(hist.back().count, 1u);   // max value clamps into the last
  std::size_t total = 0;
  for (const auto& bucket : hist) total += bucket.count;
  EXPECT_EQ(total, 2u);
}

TEST(TraceSummary, HistogramDegenerateCases) {
  Samples empty;
  EXPECT_TRUE(fixed_width_histogram(empty, 10).empty());
  Samples flat;
  flat.add(5.0);
  flat.add(5.0);
  EXPECT_TRUE(fixed_width_histogram(flat, 10).empty());  // zero spread
  Samples one;
  one.add(1.0);
  one.add(2.0);
  EXPECT_TRUE(fixed_width_histogram(one, 0).empty());
}

}  // namespace
}  // namespace eden::obs
