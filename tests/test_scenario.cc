// Tests for the harness: scenario wiring, metrics aggregation, canned
// experiment setups.
#include "harness/scenario.h"

#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/metrics.h"

namespace eden::harness {
namespace {

TEST(Scenario, AllocatesDistinctHosts) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  const auto a = scenario.add_node(NodeSpec{.name = "a"});
  const auto b = scenario.add_node(NodeSpec{.name = "b"});
  EXPECT_NE(scenario.node_id(a), scenario.node_id(b));
  EXPECT_NE(scenario.node_id(a), HostId{0});  // 0 is the manager
}

TEST(Scenario, NodeApiLookup) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  const auto a = scenario.add_node(NodeSpec{.name = "a"});
  EXPECT_NE(scenario.node_api(scenario.node_id(a)), nullptr);
  EXPECT_EQ(scenario.node_api(NodeId{999}), nullptr);
  EXPECT_EQ(scenario.node_index(scenario.node_id(a)), 0u);
  EXPECT_FALSE(scenario.node_index(NodeId{999}).has_value());
}

TEST(Scenario, StartedNodeRegistersWithManager) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "a"});
  scenario.start_node(0);
  scenario.run_until(sec(1.0));
  EXPECT_EQ(scenario.central_manager().live_nodes(), 1u);
}

TEST(Scenario, StoppedNodeExpiresFromManager) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "a"});
  scenario.start_node(0);
  scenario.run_until(sec(1.0));
  scenario.stop_node(0, /*graceful=*/false);
  scenario.run_until(sec(10.0));  // > heartbeat TTL
  EXPECT_EQ(scenario.central_manager().live_nodes(), 0u);
}

TEST(Scenario, GracefulStopLeavesImmediately) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "a"});
  scenario.start_node(0);
  // Stop between heartbeats so no in-flight heartbeat re-registers the
  // node after the deregister lands (a real race the TTL would resolve).
  scenario.run_until(sec(1.5));
  scenario.stop_node(0, /*graceful=*/true);
  scenario.run_until(sec(1.8));  // just the deregister message latency
  EXPECT_EQ(scenario.central_manager().live_nodes(), 0u);
}

TEST(Scenario, MatrixKindExposesMatrixNetwork) {
  Scenario scenario(ScenarioConfig{.seed = 1}, NetKind::kMatrix, 25.0, 50.0);
  EXPECT_NE(scenario.matrix_network(), nullptr);
  EXPECT_EQ(scenario.geo_network(), nullptr);
}

TEST(Scenario, GeoKindExposesGeoNetwork) {
  Scenario scenario(ScenarioConfig{.seed = 1}, NetKind::kGeo);
  EXPECT_NE(scenario.geo_network(), nullptr);
  EXPECT_EQ(scenario.matrix_network(), nullptr);
}

TEST(Scenario, NodeInfosMirrorSpecs) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  NodeSpec spec;
  spec.name = "v";
  spec.cores = 6;
  spec.base_frame_ms = 31.0;
  spec.dedicated = true;
  scenario.add_node(spec);
  const auto infos = scenario.node_infos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "v");
  EXPECT_EQ(infos[0].cores, 6);
  EXPECT_DOUBLE_EQ(infos[0].base_frame_ms, 31.0);
  EXPECT_TRUE(infos[0].dedicated);
}

TEST(Scenario, BulkAddNodesAppliesPlacement) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "solo"});
  NodeSpec base;
  base.cores = 4;
  const auto first = scenario.add_nodes(base, 3, [](std::size_t i, NodeSpec& s) {
    s.name = "n" + std::to_string(i);
    s.cores = static_cast<int>(2 + i);
  });
  EXPECT_EQ(first, 1u);
  ASSERT_EQ(scenario.node_count(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scenario.node_spec(first + i).name, "n" + std::to_string(i));
    EXPECT_EQ(scenario.node_spec(first + i).cores, static_cast<int>(2 + i));
    EXPECT_EQ(scenario.node_index(scenario.node_id(first + i)), first + i);
  }
  // Without a placement fn every node is a plain clone of the base.
  const auto clones = scenario.add_nodes(base, 2);
  EXPECT_EQ(scenario.node_spec(clones).cores, 4);
  EXPECT_EQ(scenario.node_count(), 6u);
}

TEST(Scenario, BulkAddEdgeClientsSharesOneManagerStub) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "a"});
  scenario.start_node(0);
  const auto first = scenario.add_edge_clients(
      [](std::size_t i) {
        return ClientSpot{.name = "u" + std::to_string(i)};
      },
      [](std::size_t) { return client::ClientConfig{}; }, 4);
  EXPECT_EQ(first, 0u);
  ASSERT_EQ(scenario.edge_client_count(), 4u);
  // Let the node's registration reach the manager before the first
  // client probing cycle fires.
  scenario.run_until(sec(1.0));
  for (std::size_t i = 0; i < 4; ++i) {
    scenario.edge_client(i).start();
  }
  scenario.run_until(sec(4.0));
  // Every client discovered and attached through the shared stub, each
  // under its own wire identity.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& c = scenario.edge_client(i);
    EXPECT_GE(c.stats().discoveries, 1u) << i;
    EXPECT_TRUE(c.current_node().has_value()) << i;
  }
  EXPECT_GE(scenario.central_manager().stats().discovery_queries, 4u);
}

TEST(Scenario, FleetStatsMergesCountersAndLatencies) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "a"});
  scenario.start_node(0);
  scenario.add_edge_clients(
      [](std::size_t i) {
        return ClientSpot{.name = "u" + std::to_string(i)};
      },
      [](std::size_t) { return client::ClientConfig{}; }, 3);
  for (std::size_t i = 0; i < 3; ++i) scenario.edge_client(i).start();
  scenario.run_until(sec(5.0));

  const FleetStats fleet = scenario.fleet_stats();
  EXPECT_EQ(fleet.clients, 3u);
  std::uint64_t frames_ok = 0;
  std::size_t samples = 0;
  Samples reference;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& c = scenario.edge_client(i);
    frames_ok += c.stats().frames_ok;
    samples += c.latency_samples().count();
    for (const double v : c.latency_samples().values()) reference.add(v);
  }
  EXPECT_GT(frames_ok, 0u);
  EXPECT_EQ(fleet.totals.frames_ok, frames_ok);
  EXPECT_EQ(fleet.latency_count, samples);
  EXPECT_DOUBLE_EQ(fleet.latency_mean_ms, reference.mean());
  EXPECT_DOUBLE_EQ(fleet.latency_p50_ms, reference.percentile(50.0));
  EXPECT_DOUBLE_EQ(fleet.latency_p90_ms, reference.percentile(90.0));
  EXPECT_DOUBLE_EQ(fleet.latency_p99_ms, reference.percentile(99.0));
  EXPECT_DOUBLE_EQ(fleet.latency_max_ms, reference.max());
}

TEST(Scenario, FleetStatsEmptyFleet) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  const FleetStats fleet = scenario.fleet_stats();
  EXPECT_EQ(fleet.clients, 0u);
  EXPECT_EQ(fleet.latency_count, 0u);
  EXPECT_DOUBLE_EQ(fleet.latency_p99_ms, 0.0);
}

TEST(Scenario, PredictInputHasBaseRttsWithoutJitter) {
  Scenario scenario(ScenarioConfig{.seed = 1}, NetKind::kMatrix, 25.0, 50.0, 0.3);
  scenario.add_node(NodeSpec{.name = "a"});
  auto& client = scenario.add_edge_client(ClientSpot{.name = "u"}, {});
  const auto input =
      scenario.predict_input({client.id()}, 20.0, 20'000);
  ASSERT_EQ(input.rtt_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(input.rtt_ms[0][0], 25.0);  // exact, no jitter
  EXPECT_NEAR(input.trans_ms[0][0], 20'000 * 8.0 / (50.0 * 1e6) * 1000, 0.01);
}

// Regression: a sweep whose scenarios never exercise the protocol must
// fail loudly instead of greenwashing every invariant.
TEST(Scenario, VacuousRunWithoutClientsThrows) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "a"});
  scenario.start_node(0);
  scenario.run_until(sec(5.0));
  EXPECT_THROW(scenario.require_nonvacuous_run(), std::runtime_error);
}

TEST(Scenario, VacuousRunWithSenderButZeroFramesThrows) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  scenario.add_node(NodeSpec{.name = "a"});
  scenario.start_node(0);
  client::ClientConfig config;
  config.send_frames = true;
  scenario.add_edge_client(ClientSpot{.name = "u"}, config);  // never started
  scenario.run_until(sec(5.0));
  EXPECT_THROW(scenario.require_nonvacuous_run(), std::runtime_error);
}

TEST(Scenario, NonvacuousRunPassesTheGuard) {
  Scenario scenario(ScenarioConfig{.seed = 1});
  NodeSpec spec;
  spec.name = "a";
  spec.cores = 2;
  spec.base_frame_ms = 20.0;
  scenario.add_node(spec);
  scenario.start_node(0);
  scenario.run_until(sec(1.0));
  auto& user = scenario.add_edge_client(ClientSpot{.name = "u"}, {});
  user.start();
  scenario.run_until(sec(8.0));
  EXPECT_NO_THROW(scenario.require_nonvacuous_run());
  EXPECT_GT(user.stats().frames_sent, 0u);
}

TEST(Metrics, FleetWindowMergesClients) {
  TimeSeries a;
  TimeSeries b;
  a.add(sec(1), 10.0);
  b.add(sec(2), 30.0);
  const auto stats = fleet_window({&a, &b}, 0, sec(10));
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 20.0);
}

TEST(Metrics, FairnessIsStddevOfPerClientMeans) {
  TimeSeries a;
  TimeSeries b;
  for (int i = 0; i < 10; ++i) {
    a.add(sec(i), 10.0);
    b.add(sec(i), 30.0);
  }
  // Per-client means are 10 and 30 -> population stddev 10.
  EXPECT_NEAR(fairness_stddev({&a, &b}, 0, sec(100)), 10.0, 1e-9);
  // A client with no samples in the window is ignored.
  TimeSeries empty;
  EXPECT_NEAR(fairness_stddev({&a, &b, &empty}, 0, sec(100)), 10.0, 1e-9);
}

TEST(Metrics, FleetTraceBucketsAndCarries) {
  TimeSeries a;
  a.add(msec(100), 10.0);
  a.add(msec(1100), 20.0);
  const auto trace = fleet_trace({&a}, 0, sec(3), sec(1));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace[0].second, 10.0);
  EXPECT_DOUBLE_EQ(trace[1].second, 20.0);
  EXPECT_DOUBLE_EQ(trace[2].second, 20.0);  // carried forward
}

TEST(Experiments, RealWorldSetupMatchesTableII) {
  auto setup = make_realworld_setup(7);
  ASSERT_EQ(setup.volunteers.size(), 5u);
  ASSERT_EQ(setup.dedicated.size(), 4u);
  EXPECT_EQ(setup.user_spots.size(), 15u);
  EXPECT_EQ(setup.scenario->node_count(), 10u);

  // Table II processing times.
  EXPECT_DOUBLE_EQ(setup.scenario->node_spec(setup.volunteers[0]).base_frame_ms,
                   24.0);
  EXPECT_DOUBLE_EQ(setup.scenario->node_spec(setup.volunteers[4]).base_frame_ms,
                   49.0);
  for (const auto d : setup.dedicated) {
    const auto& spec = setup.scenario->node_spec(d);
    EXPECT_TRUE(spec.dedicated);
    EXPECT_DOUBLE_EQ(spec.base_frame_ms, 30.0);
    EXPECT_TRUE(spec.burstable);
  }
  EXPECT_TRUE(setup.scenario->node_spec(setup.cloud).is_cloud);
  EXPECT_EQ(setup.all_nodes().size(), 10u);
}

TEST(Experiments, RealWorldRttOrderingMatchesFig1) {
  auto setup = make_realworld_setup(7);
  auto& scenario = *setup.scenario;
  auto& client = scenario.add_edge_client(setup.user_spots[0], {});
  const auto& model = scenario.network_model();
  const HostId user = client.id();

  double best_volunteer = 1e9;
  for (const auto v : setup.volunteers) {
    best_volunteer = std::min(
        best_volunteer, to_ms(model.base_rtt(user, scenario.node_id(v))));
  }
  const double lz = to_ms(model.base_rtt(user, scenario.node_id(setup.dedicated[0])));
  const double cloud = to_ms(model.base_rtt(user, scenario.node_id(setup.cloud)));
  EXPECT_LT(best_volunteer, lz);
  EXPECT_LT(lz, cloud);
  EXPECT_GT(cloud, 55.0);  // regional cloud well above the metro numbers
}

TEST(Experiments, EmulationSetupHasNineNodesAndBoundedRtts) {
  auto setup = make_emulation_setup(13, 15);
  EXPECT_EQ(setup.scenario->node_count(), 9u);
  EXPECT_EQ(setup.user_spots.size(), 15u);
  ASSERT_EQ(setup.rtt_ms.size(), 15u);
  for (const auto& row : setup.rtt_ms) {
    ASSERT_EQ(row.size(), 9u);
    for (const double rtt : row) {
      EXPECT_GE(rtt, 8.0);
      EXPECT_LE(rtt, 55.0);
    }
  }
}

TEST(Experiments, EmulationSetupIsSeedDeterministic) {
  const auto s1 = make_emulation_setup(13, 15);
  const auto s2 = make_emulation_setup(13, 15);
  EXPECT_EQ(s1.rtt_ms, s2.rtt_ms);
  const auto s3 = make_emulation_setup(14, 15);
  EXPECT_NE(s1.rtt_ms, s3.rtt_ms);
}

TEST(Experiments, WireClientInstallsRtts) {
  auto setup = make_emulation_setup(13, 3);
  auto& scenario = *setup.scenario;
  auto& client = scenario.add_edge_client(setup.user_spots[0], {});
  setup.wire_client(client.id(), 0);
  const auto& model = scenario.network_model();
  for (std::size_t j = 0; j < scenario.node_count(); ++j) {
    // msec() quantises to whole microseconds.
    EXPECT_NEAR(to_ms(model.base_rtt(client.id(), scenario.node_id(j))),
                setup.rtt_ms[0][j], 1e-3);
  }
}

TEST(Experiments, ChurnSpecsFollowInstanceMix) {
  const auto specs = churn_node_specs(18);
  ASSERT_EQ(specs.size(), 18u);
  int medium = 0;
  int xlarge = 0;
  int xxlarge = 0;
  for (const auto& spec : specs) {
    if (spec.cores == 2) ++medium;
    if (spec.cores == 4) ++xlarge;
    if (spec.cores == 8) ++xxlarge;
  }
  EXPECT_EQ(medium, 8);
  EXPECT_EQ(xlarge, 8);
  EXPECT_EQ(xxlarge, 2);
}

}  // namespace
}  // namespace eden::harness
