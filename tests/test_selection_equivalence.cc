// Equivalence suite pinning the geo-indexed discovery pipeline to the
// legacy linear scan: for any topology the index-backed
// GlobalSelector::select(request, registry) must produce byte-identical
// responses to the materialized-snapshot overload — same candidates, same
// order, bitwise-equal scores. The index is allowed to visit a superset of
// buckets, never to change the answer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/geohash.h"
#include "harness/experiments.h"
#include "manager/central_manager.h"

// This suite exists to pin the indexed pipeline against the deprecated
// copying shim — calling snapshot() here is the whole point.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace eden::manager {
namespace {

constexpr geo::GeoPoint kMetroCenter{44.9778, -93.2650};  // Minneapolis

void expect_identical(const net::DiscoveryResponse& legacy,
                      const net::DiscoveryResponse& indexed) {
  ASSERT_EQ(legacy.candidates.size(), indexed.candidates.size());
  for (std::size_t i = 0; i < legacy.candidates.size(); ++i) {
    EXPECT_EQ(legacy.candidates[i].node, indexed.candidates[i].node) << i;
    EXPECT_EQ(legacy.candidates[i].geohash, indexed.candidates[i].geohash) << i;
    EXPECT_EQ(legacy.candidates[i].endpoint, indexed.candidates[i].endpoint)
        << i;
    // Bitwise double equality: the indexed path must run the exact same
    // arithmetic, not a numerically-close variant.
    EXPECT_EQ(legacy.candidates[i].score, indexed.candidates[i].score) << i;
  }
}

// Geohash zoo: ~10% no location, ~5% undecodable (valid prefix + invalid
// character, exercising the fallback bucket's textual prefix matching),
// the rest valid at random precisions 1..8.
std::string random_hash(Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.10) return {};
  const auto point =
      harness::random_point_near(kMetroCenter, rng.uniform(1.0, 400.0), rng);
  const int precision = static_cast<int>(rng.uniform_int(1, 8));
  std::string hash = geo::geohash_encode(point, precision);
  if (roll < 0.15) hash += 'a';  // 'a' is not in the geohash alphabet
  return hash;
}

net::NodeStatus random_status(std::uint32_t id, Rng& rng) {
  net::NodeStatus status;
  status.node = NodeId{id};
  status.geohash = random_hash(rng);
  status.cores = static_cast<int>(rng.uniform_int(1, 32));
  status.base_frame_ms = rng.uniform(10.0, 80.0);
  status.utilization = rng.uniform(0.0, 1.0);
  status.attached_users = static_cast<int>(rng.uniform_int(0, 20));
  status.dedicated = rng.uniform() < 0.3;
  status.is_cloud = rng.uniform() < 0.1;
  status.network_tag = (rng.uniform() < 0.5) ? "isp-a" : "isp-b";
  status.endpoint = "host-" + std::to_string(id) + ":9000";
  if (rng.uniform() < 0.3) status.app_types = {"ar"};
  if (rng.uniform() < 0.1) status.app_types.push_back("render");
  return status;
}

net::DiscoveryRequest random_request(std::uint32_t client, Rng& rng) {
  net::DiscoveryRequest request;
  request.client = ClientId{client};
  request.geohash = random_hash(rng);
  request.network_tag = (rng.uniform() < 0.5) ? "isp-a" : "isp-b";
  request.top_n = static_cast<int>(rng.uniform_int(1, 8));
  if (rng.uniform() < 0.25) request.app_type = "ar";
  return request;
}

TEST(SelectionEquivalence, RandomizedTopologies) {
  Rng rng(20260805);
  for (int trial = 0; trial < 40; ++trial) {
    Rng trial_rng = rng.fork("trial-" + std::to_string(trial));
    Registry registry(sec(3.0));
    const SimTime now = sec(100.0);
    const auto node_count = trial_rng.uniform_int(1, 120);
    for (std::int64_t i = 0; i < node_count; ++i) {
      // Heartbeats staggered across [now - 3.2s, now]: some entries sit
      // right at the TTL boundary, so expiry races are part of the
      // equivalence contract, not a separate case.
      const SimTime heartbeat =
          now - static_cast<SimTime>(trial_rng.uniform(0.0, 3.2e6));
      registry.upsert(
          random_status(static_cast<std::uint32_t>(1000 + i), trial_rng),
          heartbeat);
    }
    GlobalPolicy policy;
    if (trial % 3 == 0) policy.w_reliability = 0.5;
    if (trial % 4 == 0) policy.initial_prefix = 5;
    const GlobalSelector selector(policy);
    for (std::uint32_t q = 0; q < 25; ++q) {
      const auto request = random_request(q, trial_rng);
      const auto legacy = selector.select(request, registry.snapshot(now), now);
      const auto indexed = selector.select(request, registry, now);
      expect_identical(legacy, indexed);
    }
  }
}

TEST(SelectionEquivalence, EmptyRegistry) {
  Registry registry(sec(3.0));
  const GlobalSelector selector;
  net::DiscoveryRequest request;
  request.client = ClientId{1};
  request.geohash = "9zvxvf";
  const auto legacy = selector.select(request, registry.snapshot(0), 0);
  const auto indexed = selector.select(request, registry, 0);
  expect_identical(legacy, indexed);
  EXPECT_TRUE(indexed.candidates.empty());
}

TEST(SelectionEquivalence, AllNodesWithoutUsableGeohash) {
  // Every node in the fallback bucket; users decodable and not.
  Rng rng(7);
  Registry registry(sec(3.0));
  for (std::uint32_t i = 0; i < 30; ++i) {
    auto status = random_status(i, rng);
    status.geohash = (i % 2 == 0) ? std::string{} : "9zvxaa";  // undecodable
    registry.upsert(status, sec(1));
  }
  const GlobalSelector selector;
  for (const char* user_hash : {"9zvxvf", "", "9zvxaa", "dp3wnh"}) {
    net::DiscoveryRequest request;
    request.client = ClientId{1};
    request.geohash = user_hash;
    request.top_n = 5;
    expect_identical(selector.select(request, registry.snapshot(sec(1)), sec(1)),
                     selector.select(request, registry, sec(1)));
  }
}

TEST(SelectionEquivalence, RealWorldScenarioAfterWarmup) {
  // The Table II deployment after 3 s of heartbeats: the live registry the
  // manager actually serves from must answer identically on both paths.
  auto setup = harness::make_realworld_setup(/*seed=*/99);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(3.0));
  auto& manager = scenario.central_manager();
  const SimTime now = scenario.scheduler().now();
  const auto& selector = manager.selector();
  std::uint32_t next_client = 90000;
  for (const auto& spot : setup.user_spots) {
    net::DiscoveryRequest request;
    request.client = ClientId{next_client++};
    request.geohash = scenario.geohash_of(spot.position);
    request.network_tag = spot.network_tag;
    request.top_n = 3;
    const auto legacy =
        selector.select(request, manager.registry().snapshot(now), now);
    const auto indexed = selector.select(request, manager.registry(), now);
    expect_identical(legacy, indexed);
    EXPECT_FALSE(indexed.candidates.empty());
  }
}

}  // namespace
}  // namespace eden::manager

#pragma GCC diagnostic pop
