// Failure-injection tests for the failure monitor (§IV-E): immediate
// switch to proactively-connected backups, reactive re-connect, hard
// failures when every backup is gone.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/scenario.h"

namespace eden::client {
namespace {

using harness::ClientSpot;
using harness::NodeSpec;
using harness::Scenario;
using harness::ScenarioConfig;

NodeSpec volunteer(const std::string& name, double lat, double lon,
                   int cores = 2, double frame_ms = 30.0) {
  NodeSpec spec;
  spec.name = name;
  spec.position = {lat, lon};
  spec.tier = net::AccessTier::kFiber;
  spec.cores = cores;
  spec.base_frame_ms = frame_ms;
  return spec;
}

ClientConfig probing_config(int top_n = 3, bool proactive = true) {
  ClientConfig config;
  config.top_n = top_n;
  config.probing_period = sec(2.0);
  config.proactive_connections = proactive;
  return config;
}

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest()
      : scenario_(ScenarioConfig{.seed = 21}, harness::NetKind::kGeo) {}

  void build_three_nodes() {
    node_a_ = scenario_.add_node(volunteer("a", 44.978, -93.265, 4, 20.0));
    node_b_ = scenario_.add_node(volunteer("b", 44.99, -93.25, 2, 30.0));
    node_c_ = scenario_.add_node(volunteer("c", 45.01, -93.20, 2, 35.0));
    harness::start_all_nodes(scenario_);
    scenario_.run_until(sec(2.0));
  }

  EdgeClient& add_client(ClientConfig config) {
    auto& client = scenario_.add_edge_client(
        ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
        std::move(config));
    client.start();
    return client;
  }

  // Index of the node the client is currently attached to.
  std::size_t current_index(const EdgeClient& client) {
    return *scenario_.node_index(*client.current_node());
  }

  Scenario scenario_;
  std::size_t node_a_{0};
  std::size_t node_b_{0};
  std::size_t node_c_{0};
};

TEST_F(FailoverTest, ImmediateSwitchToFirstBackup) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(client.current_node().has_value());
  ASSERT_FALSE(client.backup_nodes().empty());
  const NodeId expected_backup = client.backup_nodes().front();

  scenario_.stop_node(current_index(client), /*graceful=*/false);
  scenario_.run_until(sec(10.0));

  // Failure monitor replaced the node with the pre-sorted second-best.
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_EQ(*client.current_node(), expected_backup);
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_EQ(client.stats().hard_failures, 0u);
}

TEST_F(FailoverTest, ServiceContinuesThroughFailure) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  scenario_.stop_node(current_index(client), false);
  scenario_.run_until(sec(20.0));

  // Frames keep completing after the failure (on the backup).
  const auto after = client.latency_series().window(sec(8), sec(20));
  EXPECT_GT(after.count(), 100u);
}

TEST_F(FailoverTest, ProactiveGapSmallerThanReactive) {
  // Measure the service interruption (max gap between consecutive
  // completed frames around the failure) with and without proactive
  // connections — the Fig 4 comparison.
  auto gap_for = [&](bool proactive) {
    Scenario scenario(ScenarioConfig{.seed = 33}, harness::NetKind::kGeo);
    scenario.add_node(volunteer("a", 44.978, -93.265, 4, 20.0));
    scenario.add_node(volunteer("b", 44.99, -93.25, 2, 30.0));
    scenario.add_node(volunteer("c", 45.01, -93.20, 2, 35.0));
    harness::start_all_nodes(scenario);
    scenario.run_until(sec(2.0));
    auto config = probing_config(3, proactive);
    config.reconnect_penalty = msec(800.0);
    auto& client = scenario.add_edge_client(
        ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
        config);
    client.start();
    scenario.run_until(sec(6.0));
    scenario.stop_node(*scenario.node_index(*client.current_node()), false);
    scenario.run_until(sec(20.0));

    SimTime max_gap = 0;
    SimTime prev = 0;
    for (const auto& [t, v] : client.latency_series().points()) {
      if (prev != 0) max_gap = std::max(max_gap, t - prev);
      prev = t;
    }
    return max_gap;
  };

  const SimTime proactive_gap = gap_for(true);
  const SimTime reactive_gap = gap_for(false);
  EXPECT_LT(proactive_gap, reactive_gap);
  EXPECT_GT(reactive_gap, msec(800.0));  // at least the reconnect penalty
  EXPECT_LT(proactive_gap, sec(2.5));    // ~keepalive detection + switch
}

TEST_F(FailoverTest, CascadingFailuresWalkTheBackupList) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  // Kill the current node AND the first backup at the same instant.
  const std::size_t current = current_index(client);
  ASSERT_FALSE(client.backup_nodes().empty());
  const std::size_t first_backup =
      *scenario_.node_index(client.backup_nodes().front());
  scenario_.stop_node(current, false);
  scenario_.stop_node(first_backup, false);
  scenario_.run_until(sec(12.0));

  ASSERT_TRUE(client.current_node().has_value());
  const std::size_t survivor = current_index(client);
  EXPECT_NE(survivor, current);
  EXPECT_NE(survivor, first_backup);
  EXPECT_EQ(client.stats().hard_failures, 0u);
}

TEST_F(FailoverTest, AllBackupsDeadIsAHardFailure) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  // Everything dies at once: the client must record a hard failure
  // (re-connect situation) — this is what Fig 10b counts.
  scenario_.stop_node(node_a_, false);
  scenario_.stop_node(node_b_, false);
  scenario_.stop_node(node_c_, false);
  scenario_.run_until(sec(12.0));
  EXPECT_GE(client.stats().hard_failures, 1u);
  EXPECT_FALSE(client.current_node().has_value());

  // A node returns: the reactive rediscovery path eventually re-attaches.
  scenario_.schedule_node_start(node_c_, sec(13.0));
  scenario_.run_until(sec(25.0));
  EXPECT_TRUE(client.current_node().has_value());
}

TEST_F(FailoverTest, TopN1HasNoBackups) {
  build_three_nodes();
  auto& client = add_client(probing_config(/*top_n=*/1));
  scenario_.run_until(sec(6.0));
  EXPECT_TRUE(client.backup_nodes().empty());
  scenario_.stop_node(current_index(client), false);
  scenario_.run_until(sec(12.0));
  // With no backups every failure is a hard failure.
  EXPECT_GE(client.stats().hard_failures, 1u);
}

TEST_F(FailoverTest, GracefulLeaveAlsoTriggersFailover) {
  // A graceful node departure (deregister + dead host) looks the same from
  // the client's data path: the keepalive misses, failover kicks in.
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  const std::size_t current = current_index(client);
  scenario_.stop_node(current, /*graceful=*/true);
  scenario_.run_until(sec(12.0));
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_NE(current_index(client), current);
}

TEST_F(FailoverTest, NoRouteKeepaliveDrivesFailover) {
  // Regression: the current node's resolver yielding nullptr (deregistered
  // / pulled from the fabric) used to return early from keepalive_tick(),
  // so the node never accrued misses and the client stayed attached to it
  // forever. No-route must count as a miss and drive the failure monitor.
  scenario_.enable_observability();
  build_three_nodes();
  auto config = probing_config();
  config.probing_period = sec(10.0);  // keepalive, not re-probing, must act
  config.send_frames = false;         // selection-only: keepalive-only path
  auto& client = add_client(config);
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(client.current_node().has_value());
  const NodeId wedged = *client.current_node();
  ASSERT_FALSE(client.backup_nodes().empty());

  scenario_.set_route(wedged, false);
  scenario_.run_until(sec(9.0));

  auto* trace = scenario_.trace_recorder();
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->count(obs::EventKind::kKeepaliveMiss), 2u);
  EXPECT_GE(trace->count(obs::EventKind::kNodeFailure), 1u);
  EXPECT_GE(trace->count(obs::EventKind::kFailover), 1u);
  EXPECT_GE(client.stats().failovers, 1u);
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_NE(*client.current_node(), wedged);
}

TEST_F(FailoverTest, NoRouteFrameIsCountedAndFailsOver) {
  // Regression: send_frame() used to return early on a nullptr route —
  // frames vanished without touching frames_sent/frames_failed and the
  // client never reacted. A no-route frame is a definitive drop: count it
  // and fail over immediately.
  scenario_.enable_observability();
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(client.current_node().has_value());
  const NodeId wedged = *client.current_node();
  const auto frames_failed_before = client.stats().frames_failed;

  scenario_.set_route(wedged, false);
  scenario_.run_until(sec(8.0));

  auto* trace = scenario_.trace_recorder();
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->count(obs::EventKind::kFrameDrop), 1u);
  EXPECT_GE(trace->count(obs::EventKind::kNodeFailure), 1u);
  EXPECT_GE(trace->count(obs::EventKind::kFailover), 1u);
  EXPECT_GT(client.stats().frames_failed, frames_failed_before);
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_NE(*client.current_node(), wedged);
  // Service resumed on the backup: frames complete after the cut.
  EXPECT_GT(client.latency_series().window(sec(7), sec(8)).count(), 0u);
}

TEST_F(FailoverTest, FailedNodeRemovedFromDiscoveryAfterTtl) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  const std::size_t failed = current_index(client);
  scenario_.stop_node(failed, false);
  // After the heartbeat TTL (3 s) + a probing period, the candidate list no
  // longer contains the dead node, so backups are all alive.
  scenario_.run_until(sec(14.0));
  for (const NodeId b : client.backup_nodes()) {
    EXPECT_NE(b, scenario_.node_id(failed));
  }
}

}  // namespace
}  // namespace eden::client
