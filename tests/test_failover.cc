// Failure-injection tests for the failure monitor (§IV-E): immediate
// switch to proactively-connected backups, reactive re-connect, hard
// failures when every backup is gone — plus manager-failover tests
// (DESIGN.md §15): the primary dies mid-churn at each crash point and the
// warm standby takes over with every oracle holding.
#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "check/spec.h"
#include "harness/experiments.h"
#include "harness/scenario.h"
#include "journal/manager_journal.h"

namespace eden::client {
namespace {

using harness::ClientSpot;
using harness::NodeSpec;
using harness::Scenario;
using harness::ScenarioConfig;

NodeSpec volunteer(const std::string& name, double lat, double lon,
                   int cores = 2, double frame_ms = 30.0) {
  NodeSpec spec;
  spec.name = name;
  spec.position = {lat, lon};
  spec.tier = net::AccessTier::kFiber;
  spec.cores = cores;
  spec.base_frame_ms = frame_ms;
  return spec;
}

ClientConfig probing_config(int top_n = 3, bool proactive = true) {
  ClientConfig config;
  config.top_n = top_n;
  config.probing_period = sec(2.0);
  config.proactive_connections = proactive;
  return config;
}

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest()
      : scenario_(ScenarioConfig{.seed = 21}, harness::NetKind::kGeo) {}

  void build_three_nodes() {
    node_a_ = scenario_.add_node(volunteer("a", 44.978, -93.265, 4, 20.0));
    node_b_ = scenario_.add_node(volunteer("b", 44.99, -93.25, 2, 30.0));
    node_c_ = scenario_.add_node(volunteer("c", 45.01, -93.20, 2, 35.0));
    harness::start_all_nodes(scenario_);
    scenario_.run_until(sec(2.0));
  }

  EdgeClient& add_client(ClientConfig config) {
    auto& client = scenario_.add_edge_client(
        ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
        std::move(config));
    client.start();
    return client;
  }

  // Index of the node the client is currently attached to.
  std::size_t current_index(const EdgeClient& client) {
    return *scenario_.node_index(*client.current_node());
  }

  Scenario scenario_;
  std::size_t node_a_{0};
  std::size_t node_b_{0};
  std::size_t node_c_{0};
};

TEST_F(FailoverTest, ImmediateSwitchToFirstBackup) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(client.current_node().has_value());
  ASSERT_FALSE(client.backup_nodes().empty());
  const NodeId expected_backup = client.backup_nodes().front();

  scenario_.stop_node(current_index(client), /*graceful=*/false);
  scenario_.run_until(sec(10.0));

  // Failure monitor replaced the node with the pre-sorted second-best.
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_EQ(*client.current_node(), expected_backup);
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_EQ(client.stats().hard_failures, 0u);
}

TEST_F(FailoverTest, ServiceContinuesThroughFailure) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  scenario_.stop_node(current_index(client), false);
  scenario_.run_until(sec(20.0));

  // Frames keep completing after the failure (on the backup).
  const auto after = client.latency_series().window(sec(8), sec(20));
  EXPECT_GT(after.count(), 100u);
}

TEST_F(FailoverTest, ProactiveGapSmallerThanReactive) {
  // Measure the service interruption (max gap between consecutive
  // completed frames around the failure) with and without proactive
  // connections — the Fig 4 comparison.
  auto gap_for = [&](bool proactive) {
    Scenario scenario(ScenarioConfig{.seed = 33}, harness::NetKind::kGeo);
    scenario.add_node(volunteer("a", 44.978, -93.265, 4, 20.0));
    scenario.add_node(volunteer("b", 44.99, -93.25, 2, 30.0));
    scenario.add_node(volunteer("c", 45.01, -93.20, 2, 35.0));
    harness::start_all_nodes(scenario);
    scenario.run_until(sec(2.0));
    auto config = probing_config(3, proactive);
    config.reconnect_penalty = msec(800.0);
    auto& client = scenario.add_edge_client(
        ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
        config);
    client.start();
    scenario.run_until(sec(6.0));
    scenario.stop_node(*scenario.node_index(*client.current_node()), false);
    scenario.run_until(sec(20.0));

    SimTime max_gap = 0;
    SimTime prev = 0;
    for (const auto& [t, v] : client.latency_series().points()) {
      if (prev != 0) max_gap = std::max(max_gap, t - prev);
      prev = t;
    }
    return max_gap;
  };

  const SimTime proactive_gap = gap_for(true);
  const SimTime reactive_gap = gap_for(false);
  EXPECT_LT(proactive_gap, reactive_gap);
  EXPECT_GT(reactive_gap, msec(800.0));  // at least the reconnect penalty
  EXPECT_LT(proactive_gap, sec(2.5));    // ~keepalive detection + switch
}

TEST_F(FailoverTest, CascadingFailuresWalkTheBackupList) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  // Kill the current node AND the first backup at the same instant.
  const std::size_t current = current_index(client);
  ASSERT_FALSE(client.backup_nodes().empty());
  const std::size_t first_backup =
      *scenario_.node_index(client.backup_nodes().front());
  scenario_.stop_node(current, false);
  scenario_.stop_node(first_backup, false);
  scenario_.run_until(sec(12.0));

  ASSERT_TRUE(client.current_node().has_value());
  const std::size_t survivor = current_index(client);
  EXPECT_NE(survivor, current);
  EXPECT_NE(survivor, first_backup);
  EXPECT_EQ(client.stats().hard_failures, 0u);
}

TEST_F(FailoverTest, AllBackupsDeadIsAHardFailure) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  // Everything dies at once: the client must record a hard failure
  // (re-connect situation) — this is what Fig 10b counts.
  scenario_.stop_node(node_a_, false);
  scenario_.stop_node(node_b_, false);
  scenario_.stop_node(node_c_, false);
  scenario_.run_until(sec(12.0));
  EXPECT_GE(client.stats().hard_failures, 1u);
  EXPECT_FALSE(client.current_node().has_value());

  // A node returns: the reactive rediscovery path eventually re-attaches.
  scenario_.schedule_node_start(node_c_, sec(13.0));
  scenario_.run_until(sec(25.0));
  EXPECT_TRUE(client.current_node().has_value());
}

TEST_F(FailoverTest, TopN1HasNoBackups) {
  build_three_nodes();
  auto& client = add_client(probing_config(/*top_n=*/1));
  scenario_.run_until(sec(6.0));
  EXPECT_TRUE(client.backup_nodes().empty());
  scenario_.stop_node(current_index(client), false);
  scenario_.run_until(sec(12.0));
  // With no backups every failure is a hard failure.
  EXPECT_GE(client.stats().hard_failures, 1u);
}

TEST_F(FailoverTest, GracefulLeaveAlsoTriggersFailover) {
  // A graceful node departure (deregister + dead host) looks the same from
  // the client's data path: the keepalive misses, failover kicks in.
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  const std::size_t current = current_index(client);
  scenario_.stop_node(current, /*graceful=*/true);
  scenario_.run_until(sec(12.0));
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_NE(current_index(client), current);
}

TEST_F(FailoverTest, NoRouteKeepaliveDrivesFailover) {
  // Regression: the current node's resolver yielding nullptr (deregistered
  // / pulled from the fabric) used to return early from keepalive_tick(),
  // so the node never accrued misses and the client stayed attached to it
  // forever. No-route must count as a miss and drive the failure monitor.
  scenario_.enable_observability();
  build_three_nodes();
  auto config = probing_config();
  config.probing_period = sec(10.0);  // keepalive, not re-probing, must act
  config.send_frames = false;         // selection-only: keepalive-only path
  auto& client = add_client(config);
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(client.current_node().has_value());
  const NodeId wedged = *client.current_node();
  ASSERT_FALSE(client.backup_nodes().empty());

  scenario_.set_route(wedged, false);
  scenario_.run_until(sec(9.0));

  auto* trace = scenario_.trace_recorder();
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->count(obs::EventKind::kKeepaliveMiss), 2u);
  EXPECT_GE(trace->count(obs::EventKind::kNodeFailure), 1u);
  EXPECT_GE(trace->count(obs::EventKind::kFailover), 1u);
  EXPECT_GE(client.stats().failovers, 1u);
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_NE(*client.current_node(), wedged);
}

TEST_F(FailoverTest, NoRouteFrameIsCountedAndFailsOver) {
  // Regression: send_frame() used to return early on a nullptr route —
  // frames vanished without touching frames_sent/frames_failed and the
  // client never reacted. A no-route frame is a definitive drop: count it
  // and fail over immediately.
  scenario_.enable_observability();
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  ASSERT_TRUE(client.current_node().has_value());
  const NodeId wedged = *client.current_node();
  const auto frames_failed_before = client.stats().frames_failed;

  scenario_.set_route(wedged, false);
  scenario_.run_until(sec(8.0));

  auto* trace = scenario_.trace_recorder();
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->count(obs::EventKind::kFrameDrop), 1u);
  EXPECT_GE(trace->count(obs::EventKind::kNodeFailure), 1u);
  EXPECT_GE(trace->count(obs::EventKind::kFailover), 1u);
  EXPECT_GT(client.stats().frames_failed, frames_failed_before);
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_NE(*client.current_node(), wedged);
  // Service resumed on the backup: frames complete after the cut.
  EXPECT_GT(client.latency_series().window(sec(7), sec(8)).count(), 0u);
}

TEST_F(FailoverTest, FailedNodeRemovedFromDiscoveryAfterTtl) {
  build_three_nodes();
  auto& client = add_client(probing_config());
  scenario_.run_until(sec(6.0));
  const std::size_t failed = current_index(client);
  scenario_.stop_node(failed, false);
  // After the heartbeat TTL (3 s) + a probing period, the candidate list no
  // longer contains the dead node, so backups are all alive.
  scenario_.run_until(sec(14.0));
  for (const NodeId b : client.backup_nodes()) {
    EXPECT_NE(b, scenario_.node_id(failed));
  }
}

}  // namespace
}  // namespace eden::client

// ---- manager failover: primary dies mid-churn, warm standby takes over ----

namespace eden::check {
namespace {

// A churny failover scenario: nodes joining/leaving and clients streaming
// while the primary manager is killed. Mirrors the eden_check crash
// selftest topology but with live churn around the crash instant.
ScenarioSpec churny_crash_spec(int crash_point) {
  ScenarioSpec spec;
  spec.seed = 7100 + static_cast<std::uint64_t>(crash_point);
  spec.horizon_sec = 30.0;
  spec.cooldown_sec = 10.0;
  spec.heartbeat_ttl_sec = 3.0;
  spec.user_idle_ttl_sec = 12.0;
  spec.standby = true;
  spec.crash.enabled = true;
  spec.crash.point = crash_point;
  spec.crash.at_sec = 8.0;
  spec.crash.takeover_delay_sec = 0.5;
  for (int i = 0; i < 3; ++i) {
    FuzzNode node;
    node.lat += 0.02 * i;
    node.base_frame_ms = 18.0 + 4.0 * i;
    node.heartbeat_period_sec = 0.8;
    spec.nodes.push_back(node);
  }
  // Churn around the crash: one node joins just before it, one leaves just
  // after — both mutations must land in (or replay from) the journal.
  FuzzNode late;
  late.lon += 0.05;
  late.start_sec = 7.0;
  spec.nodes.push_back(late);
  spec.nodes[2].stop_sec = 9.5;
  spec.nodes[2].graceful_stop = true;
  for (int i = 0; i < 2; ++i) {
    FuzzClient client;
    client.lon += 0.03 * i;
    client.probing_period_sec = 2.5;
    client.start_sec = static_cast<double>(i);
    spec.clients.push_back(client);
  }
  return spec;
}

TEST(ManagerFailover, DiesMidChurnStandbyTakesOverAtEveryCrashPoint) {
  for (int point = 0; point <= 3; ++point) {
    SCOPED_TRACE("crash point " + std::to_string(point));
    const ScenarioSpec spec = churny_crash_spec(point);
    ASSERT_TRUE(effective_crash(spec).has_value());
    const RunReport report = run_spec(spec);
    // All oracles hold: the seven pre-existing ones plus journal-seqnum
    // (no LSN regression across takeover; exactly one crash + takeover)
    // and readmission (bounded re-admission of surviving nodes).
    for (const Violation& v : report.violations) {
      ADD_FAILURE() << v.oracle << ": " << v.message;
    }
    // Clients kept liveness: frames completed during the run despite the
    // manager dying (the takeover happens at 8.5 s of a 30 s horizon, so
    // the bulk of the stream flows through the standby).
    EXPECT_GT(report.frames_ok, 0u);
    EXPECT_GT(report.frames_sent, report.frames_ok / 2);
  }
}

TEST(ManagerFailover, CrashRunsAreBitwiseDeterministic) {
  const ScenarioSpec spec = churny_crash_spec(1);
  const RunReport first = run_spec(spec);
  const RunReport second = run_spec(spec);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
  EXPECT_EQ(first.trace_events, second.trace_events);
}

TEST(ManagerFailover, PlantedReplayBugTripsJournalOracles) {
  // Chaos bit: the standby silently drops the last committed batch at
  // replay. Both the LSN-regression oracle and the replay-determinism
  // witness must catch it — proving the takeover checks are live.
  ScenarioSpec spec = churny_crash_spec(1);
  spec.chaos = kChaosDropLastBatchOnReplay;
  const RunReport report = run_spec(spec);
  bool caught_lsn = false;
  bool caught_dump = false;
  for (const Violation& v : report.violations) {
    caught_lsn |= v.oracle == "journal-seqnum";
    caught_dump |= v.oracle == "journal-replay";
  }
  EXPECT_TRUE(caught_lsn);
  EXPECT_TRUE(caught_dump);
}

TEST(ManagerFailover, FuzzedCrashSeedsHoldAllOracles) {
  // A miniature of the eden_check --crash sweep, pinned in ctest: every
  // generated spec carries a standby plus a sampled crash point.
  FuzzLimits limits;
  limits.crash_points = true;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const ScenarioSpec spec = generate_spec(seed, limits);
    EXPECT_TRUE(spec.standby);
    EXPECT_TRUE(spec.crash.enabled);
    const RunReport report = run_spec(spec);
    for (const Violation& v : report.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v.oracle << ": "
                    << v.message;
    }
  }
}

}  // namespace
}  // namespace eden::check
