// Unit tests for the AR application profile and adaptive rate controller.
#include "workload/app_profile.h"

#include <gtest/gtest.h>

namespace eden::workload {
namespace {

TEST(AppProfile, FrameIntervalFromFps) {
  AppProfile app;
  EXPECT_EQ(app.frame_interval(20.0), msec(50.0));
  EXPECT_EQ(app.frame_interval(10.0), msec(100.0));
  // Non-positive fps falls back to max rate.
  EXPECT_EQ(app.frame_interval(0.0), app.frame_interval(app.max_fps));
}

TEST(AppProfile, PaperConstants) {
  const AppProfile app;
  EXPECT_DOUBLE_EQ(app.frame_bytes, 20'000);  // 0.02 MB
  EXPECT_DOUBLE_EQ(app.max_fps, 20.0);
}

TEST(RateController, StartsAtMaxRate) {
  AppProfile app;
  RateController rate(app);
  EXPECT_DOUBLE_EQ(rate.fps(), app.max_fps);
}

TEST(RateController, BacksOffAboveTarget) {
  AppProfile app;
  app.target_latency_ms = 150.0;
  RateController rate(app);
  for (int i = 0; i < 10; ++i) rate.on_frame_latency(400.0);
  EXPECT_LT(rate.fps(), app.max_fps);
  EXPECT_GE(rate.fps(), app.min_fps);
}

TEST(RateController, RecoversWhenLatencyDrops) {
  AppProfile app;
  RateController rate(app);
  for (int i = 0; i < 20; ++i) rate.on_frame_latency(500.0);
  const double low = rate.fps();
  for (int i = 0; i < 60; ++i) rate.on_frame_latency(40.0);
  EXPECT_GT(rate.fps(), low);
  EXPECT_LE(rate.fps(), app.max_fps);
}

TEST(RateController, NeverLeavesBounds) {
  AppProfile app;
  RateController rate(app);
  for (int i = 0; i < 200; ++i) rate.on_frame_latency(10000.0);
  EXPECT_DOUBLE_EQ(rate.fps(), app.min_fps);
  for (int i = 0; i < 200; ++i) rate.on_frame_latency(1.0);
  EXPECT_DOUBLE_EQ(rate.fps(), app.max_fps);
}

TEST(RateController, FailureHalvesRate) {
  AppProfile app;
  RateController rate(app);
  const double before = rate.fps();
  rate.on_frame_failure();
  EXPECT_DOUBLE_EQ(rate.fps(), before / 2);
}

TEST(RateController, DisabledAdaptationKeepsRate) {
  AppProfile app;
  app.adaptive_rate = false;
  RateController rate(app);
  for (int i = 0; i < 50; ++i) rate.on_frame_latency(5000.0);
  rate.on_frame_failure();
  EXPECT_DOUBLE_EQ(rate.fps(), app.max_fps);
}

TEST(RateController, SmoothedLatencyTracksEma) {
  AppProfile app;
  RateController rate(app);
  rate.on_frame_latency(100.0);
  EXPECT_DOUBLE_EQ(rate.smoothed_latency_ms(), 100.0);
  rate.on_frame_latency(200.0);
  EXPECT_NEAR(rate.smoothed_latency_ms(), 120.0, 1e-9);  // alpha = 0.2
}

TEST(RateController, ResetRestoresInitialState) {
  AppProfile app;
  RateController rate(app);
  for (int i = 0; i < 20; ++i) rate.on_frame_latency(1000.0);
  rate.reset();
  EXPECT_DOUBLE_EQ(rate.fps(), app.max_fps);
  EXPECT_DOUBLE_EQ(rate.smoothed_latency_ms(), 0.0);
}

}  // namespace
}  // namespace eden::workload
