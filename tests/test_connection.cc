// ConnectionPool unit tests against socketpairs: partial-write resumption
// under a tiny SO_SNDBUF, bounded-outbox backpressure, malformed-frame
// rejection, and the pool-chunk leak oracle.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "rpc/connection.h"

namespace eden::rpc {
namespace {

struct ReceivedFrame {
  std::uint64_t request_id;
  std::uint16_t type;
  std::vector<std::uint8_t> payload;
};

struct TestSink : FrameSink {
  std::vector<ReceivedFrame> frames;
  int closed = 0;

  void on_frame(ConnHandle, std::uint64_t request_id, std::uint16_t type,
                const std::uint8_t* payload, std::size_t size) override {
    frames.push_back(
        {request_id, type, std::vector<std::uint8_t>(payload, payload + size)});
  }
  void on_conn_closed(ConnHandle) override { ++closed; }
};

std::vector<std::uint8_t> make_frame(std::uint64_t request_id,
                                     std::uint16_t type,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 10;
  std::memcpy(frame.data(), &length, 4);
  std::memcpy(frame.data() + 4, &request_id, 8);
  std::memcpy(frame.data() + 12, &type, 2);
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return frame;
}

class ConnectionTest : public ::testing::Test {
 protected:
  // Runs the loop until `pred` holds or ~2 s pass.
  template <typename Pred>
  bool run_until(Pred pred) {
    const SimTime end = loop_.now() + sec(2.0);
    while (!pred() && loop_.now() < end) loop_.run_for(msec(5));
    return pred();
  }

  static void shrink_buffers(int fd) {
    const int tiny = 1;  // the kernel clamps to its minimum (a few KiB)
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  }

  EventLoop loop_;
  ConnectionPool pool_{loop_};
};

TEST_F(ConnectionTest, PartialWriteResumesUntilFrameDelivered) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  shrink_buffers(fds[0]);
  TestSink writer_sink, reader_sink;
  const ConnHandle writer = pool_.adopt(fds[0], &writer_sink);
  const ConnHandle reader = pool_.adopt(fds[1], &reader_sink);
  ASSERT_NE(writer, 0u);
  ASSERT_NE(reader, 0u);

  // Far larger than the send buffer: the first flush is necessarily
  // partial, and the rest must go out on EPOLLOUT readiness.
  std::vector<std::uint8_t> payload(256 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(pool_.send_frame(writer, 7, 3, payload));
  EXPECT_GT(pool_.outbox_bytes(writer), 0u)
      << "expected a partial first write against the tiny SO_SNDBUF";

  ASSERT_TRUE(run_until([&] { return !reader_sink.frames.empty(); }));
  ASSERT_EQ(reader_sink.frames.size(), 1u);
  EXPECT_EQ(reader_sink.frames[0].request_id, 7u);
  EXPECT_EQ(reader_sink.frames[0].type, 3u);
  EXPECT_EQ(reader_sink.frames[0].payload, payload);

  // Outbox fully drained: every pool chunk returned.
  EXPECT_EQ(pool_.outbox_bytes(writer), 0u);
  EXPECT_EQ(pool_.buffers().in_use(), 0u);
  EXPECT_EQ(writer_sink.closed, 0);
}

TEST_F(ConnectionTest, BoundedOutboxClosesStalledPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  shrink_buffers(fds[0]);
  shrink_buffers(fds[1]);
  TestSink sink;
  // fds[1] is never read: the kernel buffers fill, then the outbox grows
  // until it trips the bound.
  pool_.set_outbox_limit(64 * 1024);
  const ConnHandle conn = pool_.adopt(fds[0], &sink);
  ASSERT_NE(conn, 0u);

  std::vector<std::uint8_t> payload(8 * 1024, 0xAB);
  bool overflowed = false;
  for (int i = 0; i < 200 && !overflowed; ++i) {
    overflowed = !pool_.send_frame(conn, static_cast<std::uint64_t>(i), 1,
                                   payload);
  }
  EXPECT_TRUE(overflowed);
  EXPECT_FALSE(pool_.alive(conn));
  EXPECT_EQ(sink.closed, 1);
  // The overflow close released every queued chunk.
  EXPECT_EQ(pool_.buffers().in_use(), 0u);
  // Writes against the dead handle are silent no-ops.
  EXPECT_FALSE(pool_.send_frame(conn, 999, 1, payload));
  EXPECT_EQ(sink.closed, 1);
  ::close(fds[1]);
}

TEST_F(ConnectionTest, OversizedDeclaredLengthClosesConnection) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TestSink sink;
  const ConnHandle conn = pool_.adopt(fds[0], &sink);
  ASSERT_NE(conn, 0u);

  const std::uint32_t bad_length = kMaxFrameBytes + 1;
  std::uint8_t header[4];
  std::memcpy(header, &bad_length, 4);
  ASSERT_EQ(::send(fds[1], header, sizeof(header), 0), 4);

  ASSERT_TRUE(run_until([&] { return sink.closed > 0; }));
  EXPECT_TRUE(sink.frames.empty());
  EXPECT_FALSE(pool_.alive(conn));
  ::close(fds[1]);
}

TEST_F(ConnectionTest, UndersizedDeclaredLengthClosesConnection) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TestSink sink;
  const ConnHandle conn = pool_.adopt(fds[0], &sink);
  ASSERT_NE(conn, 0u);

  // length < 10 cannot even hold request_id + type.
  const std::uint32_t bad_length = 4;
  std::uint8_t bytes[8] = {};
  std::memcpy(bytes, &bad_length, 4);
  ASSERT_EQ(::send(fds[1], bytes, sizeof(bytes), 0), 8);

  ASSERT_TRUE(run_until([&] { return sink.closed > 0; }));
  EXPECT_FALSE(pool_.alive(conn));
  ::close(fds[1]);
}

TEST_F(ConnectionTest, CoalescedFramesParseInOrder) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TestSink sink;
  const ConnHandle conn = pool_.adopt(fds[0], &sink);
  ASSERT_NE(conn, 0u);

  // Three frames in one segment, the middle one empty.
  std::vector<std::uint8_t> wire;
  for (std::uint64_t rid = 1; rid <= 3; ++rid) {
    const std::vector<std::uint8_t> payload(
        rid == 2 ? 0 : 17, static_cast<std::uint8_t>(rid));
    const auto frame = make_frame(rid, static_cast<std::uint16_t>(rid), payload);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  ASSERT_EQ(::send(fds[1], wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  ASSERT_TRUE(run_until([&] { return sink.frames.size() >= 3; }));
  ASSERT_EQ(sink.frames.size(), 3u);
  for (std::uint64_t rid = 1; rid <= 3; ++rid) {
    EXPECT_EQ(sink.frames[rid - 1].request_id, rid);
    EXPECT_EQ(sink.frames[rid - 1].payload.size(), rid == 2 ? 0u : 17u);
  }
  EXPECT_TRUE(pool_.alive(conn));
  ::close(fds[1]);
}

TEST_F(ConnectionTest, ByteAtATimeDeliveryReassembles) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TestSink sink;
  const ConnHandle conn = pool_.adopt(fds[0], &sink);
  ASSERT_NE(conn, 0u);

  const auto frame = make_frame(42, 5, {1, 2, 3, 4, 5});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(::send(fds[1], &frame[i], 1, 0), 1);
    loop_.run_for(msec(1));
    // Short reads at every boundary must never produce a partial frame.
    if (i + 1 < frame.size()) EXPECT_TRUE(sink.frames.empty());
  }
  ASSERT_TRUE(run_until([&] { return !sink.frames.empty(); }));
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0].request_id, 42u);
  EXPECT_EQ(sink.frames[0].payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(pool_.alive(conn));
  ::close(fds[1]);
}

TEST_F(ConnectionTest, StaleHandleStopsResolvingAfterClose) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TestSink sink_a, sink_b;
  const ConnHandle a = pool_.adopt(fds[0], &sink_a);
  ASSERT_NE(a, 0u);
  pool_.close(a);  // owner close: silent
  EXPECT_EQ(sink_a.closed, 0);
  EXPECT_FALSE(pool_.alive(a));
  EXPECT_EQ(pool_.outbox_bytes(a), 0u);
  EXPECT_FALSE(pool_.send_frame(a, 1, 1, nullptr, 0));

  // The slot is re-used by the next adopt; the old handle must still not
  // resolve to the new connection.
  const ConnHandle b = pool_.adopt(fds[1], &sink_b);
  ASSERT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_FALSE(pool_.alive(a));
  EXPECT_TRUE(pool_.alive(b));
  pool_.close(b);
}

TEST_F(ConnectionTest, CloseAllReleasesEverything) {
  std::vector<TestSink> sinks(4);
  std::vector<ConnHandle> handles;
  std::vector<int> peer_fds;
  for (int i = 0; i < 4; ++i) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    shrink_buffers(fds[0]);
    const ConnHandle conn = pool_.adopt(fds[0], &sinks[i]);
    ASSERT_NE(conn, 0u);
    handles.push_back(conn);
    peer_fds.push_back(fds[1]);
    // Leave bytes queued so close_all has chunks to release.
    std::vector<std::uint8_t> payload(128 * 1024, 0x5A);
    ASSERT_TRUE(pool_.send_frame(conn, 1, 1, payload));
  }
  EXPECT_EQ(pool_.open_connections(), 4u);
  EXPECT_GT(pool_.buffers().in_use(), 0u);
  pool_.close_all();
  EXPECT_EQ(pool_.open_connections(), 0u);
  EXPECT_EQ(pool_.buffers().in_use(), 0u);
  for (const ConnHandle conn : handles) EXPECT_FALSE(pool_.alive(conn));
  for (const int fd : peer_fds) ::close(fd);
}

}  // namespace
}  // namespace eden::rpc
