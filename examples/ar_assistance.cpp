// AR cognitive assistance under volunteer churn: the paper's motivating
// application end to end. Ten users stream camera frames while volunteer
// edge nodes come and go (Poisson joins, Weibull lifetimes); the client
// runtime keeps everyone served through probing, dynamic switching and
// proactive failover.
//
//   ./examples/ar_assistance
#include <cstdio>

#include "churn/churn.h"
#include "common/table.h"
#include "harness/experiments.h"
#include "harness/metrics.h"
#include "harness/scenario.h"

using namespace eden;
using namespace eden::harness;

int main() {
  std::puts("EDEN: AR cognitive assistance over churning volunteers\n");

  ScenarioConfig config;
  config.seed = 7;
  Scenario scenario(config, NetKind::kMatrix, 25.0, 50.0, 0.05);

  // Volunteer churn: machines join as a Poisson process and stay for a
  // Weibull-distributed lifetime (the paper's §V-D2 model).
  churn::ChurnConfig churn_config;
  churn_config.horizon = sec(120.0);
  churn_config.joins_per_period = 4.0;
  churn_config.lifetime_mean_sec = 45.0;
  churn_config.initial_nodes = 4;
  churn_config.max_nodes = 16;
  Rng churn_rng = Rng(config.seed).fork("churn");
  const auto schedule = churn::generate_churn(churn_config, churn_rng);
  std::printf("churn timeline: %zu volunteers over %.0f s\n",
              schedule.total_nodes, to_sec(churn_config.horizon));

  Rng layout = Rng(config.seed).fork("layout");
  const geo::GeoPoint center{44.9778, -93.2650};
  const auto specs = churn_node_specs(static_cast<int>(schedule.total_nodes));
  std::vector<geo::GeoPoint> node_positions;
  for (auto spec : specs) {
    spec.position = random_point_near(center, 30.0, layout);
    node_positions.push_back(spec.position);
    scenario.add_node(spec);
  }
  for (const auto& event : schedule.events) {
    if (event.kind == churn::ChurnEventKind::kJoin) {
      scenario.schedule_node_start(event.node_index, event.at);
    } else {
      scenario.schedule_node_stop(event.node_index, event.at, false);
    }
  }

  // Ten AR users with adaptive frame rates.
  std::vector<client::EdgeClient*> users;
  for (int i = 0; i < 10; ++i) {
    client::ClientConfig client_config;
    client_config.top_n = 3;
    client_config.probing_period = sec(5.0);
    ClientSpot spot{"user-" + std::to_string(i),
                    random_point_near(center, 30.0, layout),
                    net::AccessTier::kCable,
                    ""};
    auto& user = scenario.add_edge_client(spot, client_config);
    for (std::size_t j = 0; j < scenario.node_count(); ++j) {
      scenario.matrix_network()->set_rtt_ms(
          user.id(), scenario.node_id(j),
          emulation_rtt_ms(spot.position, node_positions[j], layout));
    }
    scenario.simulator().schedule_at(msec(500.0), [&user] { user.start(); });
    users.push_back(&user);
  }

  scenario.run_until(churn_config.horizon);

  // Report the run like the paper's Fig 8 trace.
  std::vector<const TimeSeries*> series;
  for (const auto* user : users) series.push_back(&user->latency_series());

  Table trace({"t (s)", "alive volunteers", "avg e2e (ms)", "frames"});
  for (SimTime t = 0; t < churn_config.horizon; t += sec(10)) {
    const auto window = fleet_window(series, t, t + sec(10));
    trace.add_row({Table::num(to_sec(t), 0),
                   Table::integer(schedule.alive_at(t + sec(5))),
                   window.count() ? Table::num(window.mean()) : "-",
                   Table::integer(static_cast<long long>(window.count()))});
  }
  trace.print();

  std::uint64_t failovers = 0;
  std::uint64_t switches = 0;
  std::uint64_t hard_failures = 0;
  for (const auto* user : users) {
    failovers += user->stats().failovers;
    switches += user->stats().switches;
    hard_failures += user->stats().hard_failures;
  }
  std::printf(
      "\nvoluntary switches: %llu, failovers absorbed: %llu, "
      "service interruptions: %llu\n",
      static_cast<unsigned long long>(switches),
      static_cast<unsigned long long>(failovers),
      static_cast<unsigned long long>(hard_failures));
  std::puts("Every node departure was absorbed by a warm backup connection.");
  return 0;
}
