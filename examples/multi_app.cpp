// Multiple application server types (§III-B): object detection and a 3x
// heavier scene-segmentation service deployed on overlapping node subsets.
// Discovery filters candidates by app type; heavy-app users account for
// their own per-frame cost when predicting D_proc from the what-if probe.
//
//   ./examples/multi_app
#include <cstdio>

#include "common/table.h"
#include "harness/experiments.h"
#include "harness/metrics.h"
#include "harness/scenario.h"

using namespace eden;
using namespace eden::harness;

int main() {
  std::puts("EDEN: two application services over one volunteer pool\n");

  Scenario scenario(ScenarioConfig{.seed = 4}, NetKind::kMatrix, 20.0, 50.0,
                    0.05);

  struct Spec {
    const char* name;
    int cores;
    double frame_ms;
    std::vector<std::string> apps;
  };
  const Spec specs[] = {
      {"det-0", 4, 25.0, {"detect"}},
      {"det-1", 2, 35.0, {"detect"}},
      {"seg-0", 8, 20.0, {"segment"}},
      {"both-0", 4, 30.0, {"detect", "segment"}},
      {"both-1", 2, 40.0, {"detect", "segment"}},
  };
  for (const auto& s : specs) {
    NodeSpec node;
    node.name = s.name;
    node.cores = s.cores;
    node.base_frame_ms = s.frame_ms;
    node.app_types = s.apps;
    scenario.add_node(node);
  }
  start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  // 6 detection users (cost 1.0) and 3 segmentation users (cost 3.0).
  std::vector<client::EdgeClient*> detect_users;
  std::vector<client::EdgeClient*> segment_users;
  for (int i = 0; i < 9; ++i) {
    client::ClientConfig config;
    config.top_n = 3;
    const bool segment = i >= 6;
    config.app.app_type = segment ? "segment" : "detect";
    config.app.frame_cost = segment ? 3.0 : 1.0;
    config.app.max_fps = segment ? 10.0 : 20.0;
    ClientSpot spot;
    spot.name = (segment ? "seg-user-" : "det-user-") + std::to_string(i);
    auto& user = scenario.add_edge_client(spot, config);
    scenario.simulator().schedule_at(sec(2.0 + i), [&user] { user.start(); });
    (segment ? segment_users : detect_users).push_back(&user);
  }
  scenario.run_until(sec(40.0));

  Table placement({"node", "apps served", "attached users"});
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    std::string apps;
    for (const auto& app : scenario.node_spec(i).app_types) {
      if (!apps.empty()) apps += ",";
      apps += app;
    }
    placement.add_row({scenario.node_spec(i).name, apps,
                       Table::integer(scenario.node(i).attached_users())});
  }
  placement.print();

  auto fleet_mean = [&](const std::vector<client::EdgeClient*>& users) {
    std::vector<const TimeSeries*> series;
    for (const auto* u : users) series.push_back(&u->latency_series());
    return fleet_window(series, sec(15), sec(40)).mean();
  };
  std::printf("\ndetection users  : %.1f ms average e2e (cost 1.0 frames)\n",
              fleet_mean(detect_users));
  std::printf("segmentation users: %.1f ms average e2e (cost 3.0 frames)\n",
              fleet_mean(segment_users));

  // Placement invariant: nobody sits on a node that does not serve its app.
  int violations = 0;
  for (const auto* u : detect_users) {
    if (!u->current_node()) continue;
    const auto& apps =
        scenario.node_spec(*scenario.node_index(*u->current_node())).app_types;
    bool ok = false;
    for (const auto& app : apps) ok |= app == "detect";
    violations += ok ? 0 : 1;
  }
  for (const auto* u : segment_users) {
    if (!u->current_node()) continue;
    const auto& apps =
        scenario.node_spec(*scenario.node_index(*u->current_node())).app_types;
    bool ok = false;
    for (const auto& app : apps) ok |= app == "segment";
    violations += ok ? 0 : 1;
  }
  std::printf("app-placement violations: %d (must be 0)\n", violations);
  return violations == 0 ? 0 : 1;
}
