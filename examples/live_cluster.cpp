// Live cluster demo: the SAME protocol classes that run in the simulator
// running as a real distributed system — a central manager, three edge
// nodes and two clients talking framed RPC over localhost TCP sockets.
// Kills a node halfway through to show live failover.
//
//   ./examples/live_cluster
#include <chrono>
#include <cstdio>
#include <thread>

#include "rpc/live_runtime.h"

using namespace eden;
using namespace eden::rpc;

namespace {

node::EdgeNodeConfig make_node(std::uint32_t id, const char* geohash,
                               int cores, double frame_ms) {
  node::EdgeNodeConfig config;
  config.id = NodeId{id};
  config.geohash = geohash;
  config.executor.cores = cores;
  config.executor.base_frame_ms = frame_ms;
  config.heartbeat_period = msec(500.0);
  return config;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

int main() {
  std::puts("EDEN live cluster on localhost TCP\n");

  LiveManager manager;
  if (!manager.start(0)) {
    std::puts("failed to bind manager port");
    return 1;
  }
  std::printf("central manager listening on %s\n", manager.endpoint().c_str());

  LiveNode laptop(make_node(1, "9zvxvf", 8, 8.0), manager.endpoint());
  LiveNode desktop(make_node(2, "9zvxvg", 4, 15.0), manager.endpoint());
  LiveNode mini(make_node(3, "9zvxvu", 2, 25.0), manager.endpoint());
  laptop.start(0);
  desktop.start(0);
  mini.start(0);
  std::printf("edge nodes: laptop=%s desktop=%s mini=%s\n",
              laptop.endpoint().c_str(), desktop.endpoint().c_str(),
              mini.endpoint().c_str());
  sleep_ms(400);  // registrations

  client::ClientConfig config;
  config.geohash = "9zvxvf";
  config.top_n = 3;
  config.probing_period = msec(800.0);
  config.keepalive_period = msec(200.0);
  LiveClient alice(config, manager.endpoint());
  LiveClient bob(config, manager.endpoint());
  alice.start();
  bob.start();
  std::puts("\nclients alice & bob streaming AR frames at up to 20 FPS...");
  sleep_ms(2000);

  auto report = [](const char* name, LiveClient& client) {
    const auto stats = client.stats();
    const auto current = client.current_node();
    const auto latency = client.latency_window_ms();
    std::printf(
        "  %s: node=%s frames=%llu avg=%.2f ms probes=%llu failovers=%llu\n",
        name, current ? std::to_string(current->value).c_str() : "-",
        static_cast<unsigned long long>(stats.frames_ok), latency.mean(),
        static_cast<unsigned long long>(stats.probes_sent),
        static_cast<unsigned long long>(stats.failovers));
  };
  report("alice", alice);
  report("bob", bob);

  std::puts("\nkilling the laptop node (no deregistration — it just dies)...");
  laptop.stop(/*graceful=*/false);
  sleep_ms(2000);

  std::puts("after failover:");
  report("alice", alice);
  report("bob", bob);

  alice.stop();
  bob.stop();
  desktop.stop();
  mini.stop();
  manager.stop();
  std::puts("\ndone — the failure monitor switched both clients to warm");
  std::puts("backups without a manual re-discovery round.");
  return 0;
}
