// Quickstart: build a tiny edge-dense world in the simulator, attach one
// AR client through the client-centric 2-step selection, and watch it pick
// the best node and stream frames.
//
//   ./examples/quickstart
#include <cstdio>

#include "harness/experiments.h"
#include "harness/scenario.h"

using namespace eden;
using namespace eden::harness;

int main() {
  std::puts("EDEN quickstart: 3 volunteer edge nodes + 1 user\n");

  // 1. A world: simulator + geographic network model + central manager.
  Scenario scenario(ScenarioConfig{.seed = 1}, NetKind::kGeo);

  // 2. Three volunteer nodes with different hardware and connectivity.
  NodeSpec laptop;
  laptop.name = "fast-laptop";
  laptop.position = {44.980, -93.263};
  laptop.tier = net::AccessTier::kFiber;
  laptop.cores = 8;
  laptop.base_frame_ms = 24.0;  // per AR frame when idle
  scenario.add_node(laptop);

  NodeSpec desktop = laptop;
  desktop.name = "old-desktop";
  desktop.position = {44.995, -93.250};
  desktop.tier = net::AccessTier::kCable;
  desktop.cores = 2;
  desktop.base_frame_ms = 49.0;
  scenario.add_node(desktop);

  NodeSpec mini = laptop;
  mini.name = "mini-pc";
  mini.position = {44.960, -93.290};
  mini.tier = net::AccessTier::kCable;
  mini.cores = 4;
  mini.base_frame_ms = 35.0;
  scenario.add_node(mini);

  start_all_nodes(scenario);
  scenario.run_until(sec(2.0));  // registrations + initial what-if probes

  // 3. One AR user. The EdgeClient runs the paper's Algorithm 2: discover
  //    candidates at the manager, probe RTT + what-if processing, sort by
  //    the GO policy, join with seqNum synchronization.
  client::ClientConfig config;
  config.top_n = 3;
  config.probing_period = sec(5.0);
  auto& user = scenario.add_edge_client(
      ClientSpot{"alice", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  user.start();

  // 4. Run 30 simulated seconds of 20 FPS offloading.
  scenario.run_until(sec(32.0));

  const auto node_index = scenario.node_index(*user.current_node());
  std::printf("selected node : %s\n",
              scenario.node_spec(*node_index).name.c_str());
  std::printf("backup nodes  : %zu (proactively connected)\n",
              user.backup_nodes().size());
  const auto window = user.latency_series().window(sec(2), sec(32));
  std::printf("frames ok     : %llu\n",
              static_cast<unsigned long long>(user.stats().frames_ok));
  std::printf("avg e2e       : %.1f ms (min %.1f / max %.1f)\n", window.mean(),
              window.min(), window.max());
  std::printf("probes sent   : %llu\n",
              static_cast<unsigned long long>(user.stats().probes_sent));
  std::puts("\nThe client picked the fast, well-connected laptop and keeps");
  std::puts("two warm backups for instant failover. Try killing a node with");
  std::puts("scenario.stop_node(...) and watch the failure monitor switch.");
  return 0;
}
