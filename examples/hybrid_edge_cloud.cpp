// Hybrid edge cloud: volunteers + dedicated Local Zone instances + cloud
// fallback serving a growing user population — the paper's Table II world.
// Compares the client-centric selection against the four baselines and
// prints where each policy puts the users.
//
//   ./examples/hybrid_edge_cloud
#include <cstdio>
#include <map>

#include "baselines/assigners.h"
#include "common/table.h"
#include "harness/experiments.h"
#include "harness/metrics.h"

using namespace eden;
using namespace eden::harness;

namespace {

struct RunResult {
  double avg_ms{0};
  std::map<std::string, int> users_per_node;
};

RunResult run_policy(const std::string& policy, int users) {
  auto setup = make_realworld_setup(/*seed=*/99);
  auto& scenario = *setup.scenario;
  start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  std::vector<const TimeSeries*> series;
  const auto infos = scenario.node_infos();
  std::unique_ptr<baselines::Assigner> assigner;
  if (policy == "geo") {
    assigner = std::make_unique<baselines::GeoProximityAssigner>(infos);
  } else if (policy == "wrr") {
    assigner = std::make_unique<baselines::WeightedRoundRobinAssigner>(infos);
  } else if (policy == "cloud") {
    assigner = std::make_unique<baselines::ClosestCloudAssigner>(infos);
  }

  std::vector<client::EdgeClient*> edge_clients;
  for (int i = 0; i < users; ++i) {
    const SimTime join_at = sec(2.0 + 3.0 * i);
    if (policy == "ours") {
      client::ClientConfig config;
      config.top_n = 3;
      auto& c = scenario.add_edge_client(setup.user_spots[i], config);
      scenario.simulator().schedule_at(join_at, [&c] { c.start(); });
      series.push_back(&c.latency_series());
      edge_clients.push_back(&c);
    } else {
      auto& c = scenario.add_static_client(setup.user_spots[i], {});
      const auto target = assigner->assign(setup.user_spots[i].position);
      scenario.simulator().schedule_at(join_at,
                                       [&c, t = *target] { c.start(t); });
      series.push_back(&c.latency_series());
    }
  }

  const SimTime end = sec(2.0 + 3.0 * users + 20.0);
  scenario.run_until(end);

  RunResult result;
  result.avg_ms = fleet_window(series, end - sec(15.0), end).mean();
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    const int attached = scenario.node(i).attached_users();
    if (attached > 0) {
      result.users_per_node[scenario.node_spec(i).name] = attached;
    }
  }
  return result;
}

}  // namespace

int main() {
  std::puts("EDEN: hybrid edge cloud (5 volunteers + 4 Local Zone + cloud)\n");
  std::puts("12 AR users join one by one; each policy runs the same world.\n");

  const struct {
    const char* key;
    const char* label;
  } policies[] = {
      {"ours", "Client-centric (EDEN)"},
      {"geo", "Geo-proximity"},
      {"wrr", "Resource-aware WRR"},
      {"cloud", "Closest cloud"},
  };

  Table table({"policy", "avg e2e (ms)", "placement (node:users)"});
  for (const auto& policy : policies) {
    const auto result = run_policy(policy.key, 12);
    std::string placement;
    for (const auto& [name, count] : result.users_per_node) {
      if (!placement.empty()) placement += " ";
      placement += name + ":" + std::to_string(count);
    }
    table.add_row({policy.label, Table::num(result.avg_ms), placement});
  }
  table.print();

  std::puts(
      "\nThe client-centric policy mixes volunteers and dedicated nodes per\n"
      "user connectivity; geo-proximity piles users onto whatever is\n"
      "physically closest; WRR balances load but ships frames across slow\n"
      "paths; the cloud pays the backbone RTT on every single frame.");
  return 0;
}
