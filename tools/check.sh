#!/usr/bin/env bash
# One-entry-point check: configure + build the release and asan presets and
# run the full ctest suite on both. This is what CI runs; locally it is the
# strictest pre-commit gate (the tier-1 tree in build/ is a subset).
#
# Usage: tools/check.sh [jobs]      (default: 2 parallel compile jobs)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"

for preset in release asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build (-j$JOBS) ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset"
done

echo "=== [release] scale smoke (bench_scale 2000 clients / 200 nodes) ==="
# Re-measure the smoke fleet and compare wall-clock against the committed
# BENCH_scale.json; a crash or a >2x regression fails the gate.
SMOKE_JSON="$(mktemp)"
SMOKE_REPRO="$(mktemp)"
LIVE_JSON="$(mktemp)"
trap 'rm -f "$SMOKE_JSON" "$SMOKE_REPRO" "$LIVE_JSON"' EXIT
# --threads 1 pins the shard sweep to the sequential WindowPool: CI boxes
# have unpredictable core counts and the sweep gate compares wall-clock.
build-release/bench/bench_scale --clients 2000 --nodes 200 --threads 1 \
  --json "$SMOKE_JSON"
extract_smoke_wall() {
  # wall_sec inside the "smoke" object (field order is fixed by the bench).
  sed -n '/"smoke"/,/}/p' "$1" | grep -o '"wall_sec": [0-9.]*' | head -1 |
    grep -o '[0-9.]*$'
}
REF=$(extract_smoke_wall BENCH_scale.json)
NEW=$(extract_smoke_wall "$SMOKE_JSON")
if [ -z "$REF" ] || [ -z "$NEW" ]; then
  echo "scale smoke: missing wall_sec (ref='$REF' new='$NEW')" >&2
  exit 1
fi
echo "scale smoke wall_sec: committed=$REF measured=$NEW"
awk -v ref="$REF" -v new="$NEW" 'BEGIN {
  if (new > 2.0 * ref) {
    printf "scale smoke: wall-clock regression >2x (%.3fs vs %.3fs)\n", new, ref
    exit 1
  }
}' || exit 1

# Allocation gate: the benches count operator-new calls per simulated event
# (alloc_hook.cc). Unlike wall-clock this is machine-independent, so the
# tolerance is tight: >20% over the committed value fails.
extract_smoke_allocs() {
  sed -n '/"smoke"/,/}/p' "$1" | grep -o '"allocs_per_event": [0-9.]*' |
    head -1 | grep -o '[0-9.]*$'
}
REF_ALLOCS=$(extract_smoke_allocs BENCH_scale.json)
NEW_ALLOCS=$(extract_smoke_allocs "$SMOKE_JSON")
if [ -z "$REF_ALLOCS" ] || [ -z "$NEW_ALLOCS" ]; then
  echo "scale smoke: missing allocs_per_event (ref='$REF_ALLOCS' new='$NEW_ALLOCS')" >&2
  exit 1
fi
echo "scale smoke allocs_per_event: committed=$REF_ALLOCS measured=$NEW_ALLOCS"
awk -v ref="$REF_ALLOCS" -v new="$NEW_ALLOCS" 'BEGIN {
  if (new > 1.2 * ref) {
    printf "scale smoke: allocation regression >20%% (%.3f vs %.3f allocs/event)\n", new, ref
    exit 1
  }
}' || exit 1

echo "=== [release] shard sweep gate (sharded == sequential observables) ==="
# The smoke JSON now carries a shard sweep (1/2/4/8 shards over the same
# fleet). Two gates: the sharded harness must report bit-identical
# observables at every shard count, and the 1-shard sharded run must not
# regress >2x against the committed reference wall-clock.
if ! grep -q '"identical_across_shards": true' "$SMOKE_JSON"; then
  echo "shard sweep: observables differ across shard counts" >&2
  exit 1
fi
extract_shard1_run() {
  grep -o '{"shards": 1,[^}]*' "$1" | head -1 |
    grep -o '"run_sec": [0-9.]*' | grep -o '[0-9.]*$'
}
REF_SHARD=$(extract_shard1_run BENCH_scale.json)
NEW_SHARD=$(extract_shard1_run "$SMOKE_JSON")
if [ -z "$REF_SHARD" ] || [ -z "$NEW_SHARD" ]; then
  echo "shard sweep: missing 1-shard run_sec (ref='$REF_SHARD' new='$NEW_SHARD')" >&2
  exit 1
fi
echo "shard sweep 1-shard run_sec: committed=$REF_SHARD measured=$NEW_SHARD"
awk -v ref="$REF_SHARD" -v new="$NEW_SHARD" 'BEGIN {
  if (new > 2.0 * ref) {
    printf "shard sweep: wall-clock regression >2x (%.3fs vs %.3fs)\n", new, ref
    exit 1
  }
}' || exit 1

echo "=== [release] live loopback smoke (bench_live --smoke) ==="
# The live data plane over real localhost sockets: the smoke run must hold
# the steady-state allocation bound, leak no buffer-pool chunks, and land
# inside the live-vs-sim latency tolerance band (sim parity).
build-release/bench/bench_live --smoke --json "$LIVE_JSON"
if ! grep -q '"leaked_pool_slots": 0' "$LIVE_JSON"; then
  echo "live smoke: leaked buffer-pool slots" >&2
  exit 1
fi
if ! grep -q '"within_tolerance": true' "$LIVE_JSON"; then
  echo "live smoke: live-vs-sim latency outside the tolerance band" >&2
  exit 1
fi
extract_live_allocs() {
  sed -n '/"smoke"/,/}/p' "$1" | grep -o '"allocs_per_frame": [0-9.]*' |
    head -1 | grep -o '[0-9.]*$'
}
REF_LIVE=$(extract_live_allocs BENCH_live.json)
NEW_LIVE=$(extract_live_allocs "$LIVE_JSON")
if [ -z "$REF_LIVE" ] || [ -z "$NEW_LIVE" ]; then
  echo "live smoke: missing allocs_per_frame (ref='$REF_LIVE' new='$NEW_LIVE')" >&2
  exit 1
fi
echo "live smoke allocs_per_frame: committed=$REF_LIVE measured=$NEW_LIVE"
# Two gates. Absolute: the steady-state frame path must stay allocation-
# free (<1 alloc/frame) — one new allocation on the hot path adds +1.0 and
# trips this immediately. Relative: >20% over the committed reference,
# floored at 0.7 because the committed JSON comes from the full-length run
# whose longer window amortizes per-probe-cycle costs over more frames.
awk -v ref="$REF_LIVE" -v new="$NEW_LIVE" 'BEGIN {
  if (new > 1.0) {
    printf "live smoke: steady-state allocation bound broken (%.3f allocs/frame > 1.0)\n", new
    exit 1
  }
  bound = 1.2 * ref; if (bound < 0.7) bound = 0.7
  if (new > bound) {
    printf "live smoke: allocation regression >20%% (%.3f vs %.3f allocs/frame)\n", new, ref
    exit 1
  }
}' || exit 1

echo "=== [asan] live data-plane focus (sockets under ASan/UBSan) ==="
# The full asan ctest above already covers these; run the socket suite
# again explicitly so a sanitizer hit on the live plane names itself even
# when triaging from the tail of the log.
for t in test_event_loop test_connection test_rpc test_live; do
  "build-asan/tests/$t" --gtest_brief=1
done

echo "=== [release] shard witness smoke (eden_check --witness) ==="
# Fuzzed topologies through the sharded harness at 1 and 4 shards: the
# canonical trace digest must be bit-identical to the windowless
# sequential reference on every seed.
build-release/tools/eden_check --witness --seeds 25 --seed-base 1 \
  --shards 1,4 --jobs "$JOBS" --budget-sec 120

echo "=== [release] deterministic-simulation smoke (eden_check) ==="
# Fixed-seed fuzz sweep under a wall-clock budget, preceded by the built-in
# selftest (seeded seqNum-freeze bug must be caught, shrunk and replayed
# byte-identically across thread counts). Any oracle violation — or a
# violation whose shrink fails to reproduce — fails the gate.
build-release/tools/eden_check --selftest --jobs "$JOBS" --out "$SMOKE_REPRO"
build-release/tools/eden_check --seeds 400 --seed-base 1 --jobs "$JOBS" \
  --budget-sec 60 --out "$SMOKE_REPRO"

echo "=== [release] crash-point fuzz smoke (eden_check --crash) ==="
# Manager-crash family: every seed gets a warm standby plus a deterministic
# crash point (after-append / before-ack / mid-batch / torn-tail) fired
# mid-churn; the journal-seqnum and readmission oracles plus the replay-
# determinism witness must hold on every takeover. The --selftest stage
# above already proved the oracles are live (planted drop-last-batch bug).
build-release/tools/eden_check --seeds 400 --seed-base 1 --crash \
  --jobs "$JOBS" --budget-sec 60 --out "$SMOKE_REPRO"

echo "=== [asan] journal/failover focus (crash recovery under ASan/UBSan) ==="
# Torn-write truncation, replay, takeover and the live restart path touch
# raw byte framing — run the journal suite again under the sanitizers so a
# hit names itself even when triaging from the tail of the log.
for t in test_journal test_failover; do
  "build-asan/tests/$t" --gtest_brief=1
done

echo "=== [release] overload fuzz smoke (eden_check --overload) ==="
# Same budgeted sweep over the overload scenario families (flash crowds,
# diurnal waves, slow credit leaks) with the starvation oracle armed.
build-release/tools/eden_check --seeds 400 --seed-base 1 --overload \
  --jobs "$JOBS" --budget-sec 60 --out "$SMOKE_REPRO"

echo "=== [release] flash-crowd smoke (load-feedback phase switching) ==="
# The curated overload figure at quarter scale: feedback-on must beat
# feedback-off on burst-window p95 without completing fewer frames.
build-release/bench/bench_flash_crowd --smoke --assert-improves

echo "=== all presets green ==="
