#!/usr/bin/env bash
# One-entry-point check: configure + build the release and asan presets and
# run the full ctest suite on both. This is what CI runs; locally it is the
# strictest pre-commit gate (the tier-1 tree in build/ is a subset).
#
# Usage: tools/check.sh [jobs]      (default: 2 parallel compile jobs)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"

for preset in release asan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build (-j$JOBS) ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset"
done

echo "=== all presets green ==="
