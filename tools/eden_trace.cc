// eden_trace: summarize a JSONL protocol trace produced by a traced
// Scenario / bench run (--trace-out). Prints event counts, a per-client
// attachment timeline (joins, switches, failovers, hard failures), and the
// failover latency histogram — the observable form of the paper's bounded
// user-visible interruption claim.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "obs/trace.h"
#include "tools/flags.h"

namespace {

using eden::obs::EventKind;
using eden::obs::TraceEvent;

const char* describe(const TraceEvent& event) {
  switch (event.kind) {
    case EventKind::kJoinAccept: return "joined";
    case EventKind::kSwitch: return "switched to";
    case EventKind::kFailover: return "failover to";
    case EventKind::kHardFailure: return "HARD FAILURE (all backups dead)";
    case EventKind::kQosReject: return "rejected by QoS filter";
    case EventKind::kNodeFailure: return "detected failure of";
    default: return eden::obs::to_string(event.kind);
  }
}

bool is_timeline_kind(EventKind kind) {
  switch (kind) {
    case EventKind::kJoinAccept:
    case EventKind::kSwitch:
    case EventKind::kFailover:
    case EventKind::kHardFailure:
    case EventKind::kQosReject:
    case EventKind::kNodeFailure:
      return true;
    default:
      return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  eden::tools::Flags flags(
      argc, argv,
      "usage: eden_trace --in trace.jsonl [--timeline-limit N]\n"
      "  Summarizes an eden::obs JSONL trace: event counts, per-client\n"
      "  attachment timeline, failover latency histogram.");
  const std::string path = flags.str("in", "");
  const int timeline_limit = flags.integer("timeline-limit", 20);
  flags.check_unused();
  if (path.empty()) {
    std::fprintf(stderr, "eden_trace: --in is required (see --help)\n");
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "eden_trace: cannot open %s\n", path.c_str());
    return 1;
  }

  std::vector<TraceEvent> events;
  std::size_t malformed = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    if (auto event = eden::obs::parse_jsonl_line(line)) {
      events.push_back(*event);
    } else {
      ++malformed;
    }
  }
  std::printf("%s: %zu events", path.c_str(), events.size());
  if (malformed != 0) std::printf(" (%zu malformed lines skipped)", malformed);
  if (!events.empty()) {
    std::printf(", t = [%.3f s, %.3f s]", eden::to_sec(events.front().at),
                eden::to_sec(events.back().at));
  }
  std::printf("\n");

  // ---- event counts ----
  std::size_t counts[eden::obs::kEventKindCount] = {};
  for (const TraceEvent& event : events) {
    counts[static_cast<std::size_t>(event.kind)] += 1;
  }
  eden::print_section("Event counts");
  eden::Table count_table({"event", "count"});
  for (std::size_t i = 0; i < eden::obs::kEventKindCount; ++i) {
    if (counts[i] == 0) continue;
    count_table.add_row({eden::obs::to_string(static_cast<EventKind>(i)),
                         eden::Table::integer(static_cast<long long>(counts[i]))});
  }
  count_table.print();

  // ---- per-client attachment timeline ----
  std::map<eden::HostId, std::vector<const TraceEvent*>> timelines;
  for (const TraceEvent& event : events) {
    if (is_timeline_kind(event.kind)) timelines[event.actor].push_back(&event);
  }
  eden::print_section("Attachment timelines");
  if (timelines.empty()) {
    std::printf("(no attachment events in trace)\n");
  }
  for (const auto& [client, entries] : timelines) {
    std::printf("client %u (%zu events):\n", client.value, entries.size());
    const std::size_t limit =
        timeline_limit <= 0 ? entries.size()
                            : static_cast<std::size_t>(timeline_limit);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i >= limit) {
        std::printf("  ... %zu more\n", entries.size() - i);
        break;
      }
      const TraceEvent& event = *entries[i];
      std::printf("  %9.3f s  %s", eden::to_sec(event.at), describe(event));
      if (event.subject.valid()) std::printf(" node %u", event.subject.value);
      if (event.kind == EventKind::kFailover) {
        std::printf("  (%.1f ms after detection)", event.value);
      }
      std::printf("\n");
    }
  }

  // ---- failover latency histogram ----
  // kFailover.value is the time from failure detection to re-attachment.
  eden::Samples failover_ms;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kFailover) failover_ms.add(event.value);
  }
  eden::print_section("Failover latency");
  if (failover_ms.empty()) {
    std::printf("(no failovers in trace)\n");
    return 0;
  }
  std::printf(
      "n=%zu  mean=%.1f ms  p50=%.1f ms  p90=%.1f ms  p99=%.1f ms  max=%.1f ms\n",
      failover_ms.count(), failover_ms.mean(), failover_ms.percentile(50),
      failover_ms.percentile(90), failover_ms.percentile(99),
      failover_ms.max());
  // Fixed-width ASCII buckets across the observed range.
  const double lo = failover_ms.min();
  const double hi = failover_ms.max();
  const int kBuckets = 10;
  const double width = (hi - lo) / kBuckets;
  if (width > 0) {
    std::vector<std::size_t> hist(kBuckets, 0);
    for (const double v : failover_ms.values()) {
      int b = static_cast<int>((v - lo) / width);
      hist[std::clamp(b, 0, kBuckets - 1)] += 1;
    }
    const std::size_t peak = *std::max_element(hist.begin(), hist.end());
    for (int b = 0; b < kBuckets; ++b) {
      const int bar =
          peak == 0 ? 0 : static_cast<int>(40.0 * static_cast<double>(hist[b]) /
                                           static_cast<double>(peak));
      std::printf("  [%7.1f, %7.1f) %-40s %zu\n", lo + b * width,
                  lo + (b + 1) * width, std::string(bar, '#').c_str(), hist[b]);
    }
  }
  return 0;
}
