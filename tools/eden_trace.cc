// eden_trace: summarize a JSONL protocol trace produced by a traced
// Scenario / bench run (--trace-out). Prints event counts, a per-client
// attachment timeline (joins, switches, failovers, hard failures), and the
// failover latency histogram — the observable form of the paper's bounded
// user-visible interruption claim. All analytics live in
// obs/trace_summary.h; this binary is argument parsing plus printf.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "obs/trace.h"
#include "obs/trace_summary.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  eden::tools::Flags flags(
      argc, argv,
      "usage: eden_trace --in trace.jsonl [--timeline-limit N]\n"
      "  Summarizes an eden::obs JSONL trace: event counts, per-client\n"
      "  attachment timeline, failover latency histogram.");
  const std::string path = flags.str("in", "");
  const int timeline_limit = flags.integer("timeline-limit", 20);
  flags.check_unused();
  if (path.empty()) {
    std::fprintf(stderr, "eden_trace: --in is required (see --help)\n");
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "eden_trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  using eden::obs::EventKind;
  using eden::obs::TraceEvent;

  const eden::obs::ParsedTrace parsed = eden::obs::parse_jsonl_text(text);
  const std::vector<TraceEvent>& events = parsed.events;
  std::printf("%s: %zu events", path.c_str(), events.size());
  if (parsed.malformed != 0) {
    std::printf(" (%zu malformed lines skipped)", parsed.malformed);
  }
  if (!events.empty()) {
    std::printf(", t = [%.3f s, %.3f s]", eden::to_sec(events.front().at),
                eden::to_sec(events.back().at));
  }
  std::printf("\n");

  // ---- event counts ----
  const eden::obs::EventCounts counts = eden::obs::count_events(events);
  eden::print_section("Event counts");
  eden::Table count_table({"event", "count"});
  for (std::size_t i = 0; i < eden::obs::kEventKindCount; ++i) {
    if (counts[i] == 0) continue;
    count_table.add_row({eden::obs::to_string(static_cast<EventKind>(i)),
                         eden::Table::integer(static_cast<long long>(counts[i]))});
  }
  count_table.print();

  // ---- per-client attachment timeline ----
  const auto timelines = eden::obs::attachment_timelines(events);
  eden::print_section("Attachment timelines");
  if (timelines.empty()) {
    std::printf("(no attachment events in trace)\n");
  }
  for (const auto& [client, entries] : timelines) {
    std::printf("client %u (%zu events):\n", client.value, entries.size());
    const std::size_t limit =
        timeline_limit <= 0 ? entries.size()
                            : static_cast<std::size_t>(timeline_limit);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i >= limit) {
        std::printf("  ... %zu more\n", entries.size() - i);
        break;
      }
      const TraceEvent& event = *entries[i];
      std::printf("  %9.3f s  %s", eden::to_sec(event.at),
                  eden::obs::describe_timeline_event(event));
      if (event.subject.valid()) std::printf(" node %u", event.subject.value);
      if (event.kind == EventKind::kFailover) {
        std::printf("  (%.1f ms after detection)", event.value);
      }
      std::printf("\n");
    }
  }

  // ---- failover latency histogram ----
  // kFailover.value is the time from failure detection to re-attachment.
  const eden::Samples failover_ms = eden::obs::failover_latencies(events);
  eden::print_section("Failover latency");
  if (failover_ms.empty()) {
    std::printf("(no failovers in trace)\n");
    return 0;
  }
  std::printf(
      "n=%zu  mean=%.1f ms  p50=%.1f ms  p90=%.1f ms  p99=%.1f ms  max=%.1f ms\n",
      failover_ms.count(), failover_ms.mean(), failover_ms.percentile(50),
      failover_ms.percentile(90), failover_ms.percentile(99),
      failover_ms.max());
  const auto hist = eden::obs::fixed_width_histogram(failover_ms, 10);
  std::size_t peak = 0;
  for (const auto& bucket : hist) peak = std::max(peak, bucket.count);
  for (const auto& bucket : hist) {
    const int bar =
        peak == 0 ? 0 : static_cast<int>(40.0 * static_cast<double>(bucket.count) /
                                         static_cast<double>(peak));
    std::printf("  [%7.1f, %7.1f) %-40s %zu\n", bucket.lo, bucket.hi,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                bucket.count);
  }
  return 0;
}
