// eden_check: deterministic simulation-fuzzing CLI.
//
//   eden_check --seeds 500 --jobs 8        sweep seeds 0..499 in parallel
//   eden_check --seeds 200 --budget-sec 60 sweep until the wall-clock budget
//   eden_check --seed 1234                 one seed, verbose report
//   eden_check --replay failure.eden-repro re-run a shrunk repro file
//   eden_check --selftest                  prove the oracles catch a seeded
//                                          protocol bug end to end
//
// A violating sweep shrinks the lowest failing seed, writes the minimized
// scenario to --out (default failure.eden-repro), and verifies the file
// replays to the same oracle before exiting. Exit codes: 0 clean, 1
// invariant violation, 2 usage/IO error, 3 shrink or replay failed to
// reproduce (determinism is broken — treat as the worst outcome).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/repro.h"
#include "check/shard_witness.h"
#include "check/shrink.h"
#include "common/types.h"
#include "harness/parallel_runner.h"

namespace {

using namespace eden;

struct Args {
  std::uint64_t seeds{0};
  std::uint64_t seed_base{0};
  bool single{false};
  std::uint64_t seed{0};
  unsigned jobs{0};  // 0 = hardware concurrency
  std::string replay_path;
  std::string dump_path;  // --seed S --dump-spec PATH: persist the spec
  std::string out_path{"failure.eden-repro"};
  bool expect_violation{false};
  bool selftest{false};
  double budget_sec{0.0};  // 0 = unbounded
  // Layer the overload generator families (flash crowd / diurnal wave /
  // slow leak, load feedback on) onto every generated seed.
  bool overload{false};
  // Layer the manager-crash family (warm standby + deterministic crash
  // point + takeover) onto every generated seed.
  bool crash{false};
  // Shard witness: run every seed through the sharded harness at each
  // count in --shards and pin the canonical digest against the one-shard
  // sequential reference.
  bool witness{false};
  std::string shards{"1,2,4,8"};

  [[nodiscard]] check::FuzzLimits limits() const {
    check::FuzzLimits out;
    out.overload_families = overload;
    out.crash_points = crash;
    return out;
  }
};

void usage() {
  std::fprintf(
      stderr,
      "usage: eden_check [--seeds N] [--seed-base B] [--seed S] [--jobs K]\n"
      "                  [--budget-sec S] [--out PATH] [--overload] "
      "[--crash]\n"
      "                  [--replay PATH [--expect-violation]] [--selftest]\n"
      "                  [--seed S --dump-spec PATH]\n"
      "                  [--witness [--shards LIST]]  sharded==sequential "
      "digest sweep\n");
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--seeds") {
      const char* v = next();
      if (!v) return false;
      args.seeds = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed-base") {
      const char* v = next();
      if (!v) return false;
      args.seed_base = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.single = true;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--jobs") {
      const char* v = next();
      if (!v) return false;
      args.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--budget-sec") {
      const char* v = next();
      if (!v) return false;
      args.budget_sec = std::strtod(v, nullptr);
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      args.out_path = v;
    } else if (flag == "--replay") {
      const char* v = next();
      if (!v) return false;
      args.replay_path = v;
    } else if (flag == "--dump-spec") {
      const char* v = next();
      if (!v) return false;
      args.dump_path = v;
    } else if (flag == "--witness") {
      args.witness = true;
    } else if (flag == "--shards") {
      const char* v = next();
      if (!v) return false;
      args.shards = v;
    } else if (flag == "--expect-violation") {
      args.expect_violation = true;
    } else if (flag == "--overload") {
      args.overload = true;
    } else if (flag == "--crash") {
      args.crash = true;
    } else if (flag == "--selftest") {
      args.selftest = true;
    } else {
      std::fprintf(stderr, "eden_check: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void print_violations(std::uint64_t seed, const check::RunReport& report) {
  for (const auto& v : report.violations) {
    std::printf("  seed %llu  t=%.3fs  [%s] %s\n",
                static_cast<unsigned long long>(seed), to_sec(v.at),
                v.oracle.c_str(), v.message.c_str());
  }
}

void print_summary(std::uint64_t seed, const check::RunReport& report) {
  std::printf(
      "seed %llu: %zu trace events, digest %016llx, frames %llu/%llu/%llu "
      "(sent/ok/failed), joins %llu, switches %llu, failovers %llu, hard "
      "failures %llu, violations %zu\n",
      static_cast<unsigned long long>(seed), report.trace_events,
      static_cast<unsigned long long>(report.trace_digest),
      static_cast<unsigned long long>(report.frames_sent),
      static_cast<unsigned long long>(report.frames_ok),
      static_cast<unsigned long long>(report.frames_failed),
      static_cast<unsigned long long>(report.joins),
      static_cast<unsigned long long>(report.switches),
      static_cast<unsigned long long>(report.failovers),
      static_cast<unsigned long long>(report.hard_failures),
      report.violations.size());
}

// Shrink the failing spec, persist the repro, and prove the file replays
// to the same oracle with the same digest. Returns the process exit code.
int shrink_and_persist(std::uint64_t seed, const check::RunReport& report,
                       const std::string& out_path,
                       const check::FuzzLimits& limits) {
  const std::string target = report.violations.front().oracle;
  std::printf("shrinking seed %llu (target oracle: %s)...\n",
              static_cast<unsigned long long>(seed), target.c_str());
  const check::ScenarioSpec initial = check::generate_spec(seed, limits);
  const check::ShrinkResult shrunk = check::shrink(initial, target);
  if (!shrunk.accepted) {
    std::fprintf(stderr,
                 "eden_check: seed %llu does not reproduce its own violation "
                 "— the run is nondeterministic\n",
                 static_cast<unsigned long long>(seed));
    return 3;
  }
  std::printf(
      "shrunk to %zu nodes, %zu clients, %zu faults, horizon %.1fs in %d "
      "runs\n",
      shrunk.spec.nodes.size(), shrunk.spec.clients.size(),
      shrunk.spec.faults.size(), shrunk.spec.horizon_sec, shrunk.attempts);
  print_violations(seed, shrunk.report);

  check::ReproFile repro;
  repro.target_oracle = target;
  repro.spec = shrunk.spec;
  if (!check::write_repro(out_path, repro)) {
    std::fprintf(stderr, "eden_check: cannot write %s\n", out_path.c_str());
    return 2;
  }
  const auto loaded = check::load_repro(out_path);
  if (!loaded || !(*loaded == repro)) {
    std::fprintf(stderr, "eden_check: %s did not round-trip\n",
                 out_path.c_str());
    return 3;
  }
  const check::RunReport replayed = check::run_spec(loaded->spec);
  bool reproduced = false;
  for (const auto& v : replayed.violations) {
    reproduced = reproduced || v.oracle == target;
  }
  if (!reproduced || replayed.trace_digest != shrunk.report.trace_digest) {
    std::fprintf(stderr,
                 "eden_check: replay of %s diverged (reproduced=%d digest "
                 "%016llx vs %016llx)\n",
                 out_path.c_str(), reproduced ? 1 : 0,
                 static_cast<unsigned long long>(replayed.trace_digest),
                 static_cast<unsigned long long>(shrunk.report.trace_digest));
    return 3;
  }
  std::printf("repro written to %s (replay verified, digest %016llx)\n",
              out_path.c_str(),
              static_cast<unsigned long long>(replayed.trace_digest));
  return 1;
}

int run_sweep(const Args& args) {
  const harness::ParallelRunner runner(args.jobs);
  const auto started = std::chrono::steady_clock::now();
  auto budget_left = [&] {
    if (args.budget_sec <= 0.0) return true;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    return elapsed.count() < args.budget_sec;
  };

  const std::size_t chunk = std::max<std::size_t>(runner.threads() * 4, 8);
  std::uint64_t checked = 0;
  while (checked < args.seeds && budget_left()) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(chunk, args.seeds - checked);
    std::vector<std::function<check::RunReport()>> jobs;
    jobs.reserve(batch);
    const check::FuzzLimits limits = args.limits();
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::uint64_t seed = args.seed_base + checked + i;
      jobs.emplace_back([seed, limits] {
        return check::run_spec(check::generate_spec(seed, limits));
      });
    }
    const std::vector<check::RunReport> reports = runner.map(std::move(jobs));
    for (std::uint64_t i = 0; i < batch; ++i) {
      if (reports[i].ok()) continue;
      const std::uint64_t seed = args.seed_base + checked + i;
      std::printf("seed %llu violated %zu invariant(s):\n",
                  static_cast<unsigned long long>(seed),
                  reports[i].violations.size());
      print_violations(seed, reports[i]);
      return shrink_and_persist(seed, reports[i], args.out_path,
                                args.limits());
    }
    checked += batch;
  }
  std::printf("checked %llu/%llu seeds (base %llu, %u threads): all "
              "invariants hold\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(args.seeds),
              static_cast<unsigned long long>(args.seed_base),
              runner.threads());
  return 0;
}

std::vector<unsigned> parse_shard_list(const std::string& list) {
  std::vector<unsigned> out;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p) break;
    if (v > 0) out.push_back(static_cast<unsigned>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

// Shard witness sweep: for every seed, run the windowless one-shard
// sequential reference and then every requested shard count, and demand a
// bit-identical canonical trace digest plus identical frame counters.
// Exit codes: 0 clean, 1 oracle violation, 3 digest divergence (the
// sharded runtime changed an observable event — the worst outcome).
int run_witness(const Args& args) {
  const std::vector<unsigned> shard_counts = parse_shard_list(args.shards);
  if (shard_counts.empty()) {
    std::fprintf(stderr, "eden_check: --shards parsed to nothing (%s)\n",
                 args.shards.c_str());
    return 2;
  }
  const std::uint64_t seeds = args.seeds > 0 ? args.seeds : 1;
  const std::uint64_t base = args.single ? args.seed : args.seed_base;
  const check::FuzzLimits limits = args.limits();

  struct SeedVerdict {
    int code{0};  // 0 ok, 1 violation, 3 divergence
    std::string detail;
  };
  const harness::ParallelRunner runner(args.jobs);
  const auto started = std::chrono::steady_clock::now();
  auto budget_left = [&] {
    if (args.budget_sec <= 0.0) return true;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    return elapsed.count() < args.budget_sec;
  };

  const std::size_t chunk = std::max<std::size_t>(runner.threads() * 4, 8);
  std::uint64_t checked = 0;
  int worst = 0;
  while (checked < seeds && budget_left() && worst == 0) {
    const std::uint64_t batch = std::min<std::uint64_t>(chunk, seeds - checked);
    std::vector<std::function<SeedVerdict()>> jobs;
    jobs.reserve(batch);
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::uint64_t seed = base + checked + i;
      jobs.emplace_back([seed, limits, &shard_counts] {
        SeedVerdict verdict;
        char buf[256];
        const check::ScenarioSpec spec = check::generate_spec(seed, limits);
        const check::ShardRunReport ref = check::run_spec_sharded(spec, 0);
        if (!ref.ok()) {
          std::snprintf(buf, sizeof(buf),
                        "seed %llu: [%s] %s (sequential reference)",
                        static_cast<unsigned long long>(seed),
                        ref.violations.front().oracle.c_str(),
                        ref.violations.front().message.c_str());
          return SeedVerdict{1, buf};
        }
        for (const unsigned s : shard_counts) {
          const check::ShardRunReport rep = check::run_spec_sharded(spec, s);
          if (rep.trace_digest != ref.trace_digest ||
              rep.trace_events != ref.trace_events ||
              rep.frames_sent != ref.frames_sent ||
              rep.frames_ok != ref.frames_ok ||
              rep.frames_failed != ref.frames_failed) {
            std::snprintf(
                buf, sizeof(buf),
                "seed %llu: %u shard(s) diverged from the sequential "
                "reference (digest %016llx vs %016llx, %zu vs %zu events, "
                "frames ok %llu vs %llu)",
                static_cast<unsigned long long>(seed), s,
                static_cast<unsigned long long>(rep.trace_digest),
                static_cast<unsigned long long>(ref.trace_digest),
                rep.trace_events, ref.trace_events,
                static_cast<unsigned long long>(rep.frames_ok),
                static_cast<unsigned long long>(ref.frames_ok));
            return SeedVerdict{3, buf};
          }
          if (!rep.ok()) {
            std::snprintf(buf, sizeof(buf),
                          "seed %llu: [%s] %s (at %u shards)",
                          static_cast<unsigned long long>(seed),
                          rep.violations.front().oracle.c_str(),
                          rep.violations.front().message.c_str(), s);
            return SeedVerdict{1, buf};
          }
        }
        return verdict;
      });
    }
    const std::vector<SeedVerdict> verdicts = runner.map(std::move(jobs));
    for (const SeedVerdict& v : verdicts) {
      if (v.code == 0) continue;
      std::fprintf(stderr, "eden_check: %s\n", v.detail.c_str());
      worst = std::max(worst, v.code);
    }
    checked += batch;
  }
  if (worst != 0) return worst;
  std::printf(
      "witness: %llu/%llu seed(s) (base %llu) bit-identical across shard "
      "counts {%s} vs the sequential reference\n",
      static_cast<unsigned long long>(checked),
      static_cast<unsigned long long>(seeds),
      static_cast<unsigned long long>(base), args.shards.c_str());
  return 0;
}

int run_single(const Args& args) {
  const check::ScenarioSpec spec = check::generate_spec(args.seed, args.limits());
  const check::RunReport report = check::run_spec(spec);
  std::printf(
      "spec: %zu nodes, %zu clients, %zu faults, horizon %.1fs, jitter "
      "%.3f, net %s\n",
      spec.nodes.size(), spec.clients.size(), spec.faults.size(),
      spec.horizon_sec, spec.jitter_sigma,
      spec.net_kind == static_cast<int>(check::SpecNetKind::kMatrix)
          ? "matrix"
          : "geo");
  print_summary(args.seed, report);
  if (!report.ok()) {
    print_violations(args.seed, report);
    return 1;
  }
  // --dump-spec: persist the generated spec as a repro file (no target
  // oracle — a replay just re-runs it and reports whatever fires). Used to
  // curate regression scenarios: the committed file pins today's exact
  // topology and timeline independent of future generator changes.
  if (!args.dump_path.empty()) {
    check::ReproFile repro;
    repro.spec = spec;
    if (!check::write_repro(args.dump_path, repro)) {
      std::fprintf(stderr, "eden_check: cannot write %s\n",
                   args.dump_path.c_str());
      return 2;
    }
    const auto loaded = check::load_repro(args.dump_path);
    if (!loaded || !(*loaded == repro)) {
      std::fprintf(stderr, "eden_check: %s did not round-trip\n",
                   args.dump_path.c_str());
      return 3;
    }
    std::printf("spec written to %s (digest %016llx)\n",
                args.dump_path.c_str(),
                static_cast<unsigned long long>(report.trace_digest));
  }
  return 0;
}

int run_replay(const Args& args) {
  const auto repro = check::load_repro(args.replay_path);
  if (!repro) {
    std::fprintf(stderr, "eden_check: cannot parse %s\n",
                 args.replay_path.c_str());
    return 2;
  }
  const check::RunReport report = check::run_spec(repro->spec);
  print_summary(repro->spec.seed, report);
  print_violations(repro->spec.seed, report);
  if (!repro->target_oracle.empty()) {
    for (const auto& v : report.violations) {
      if (v.oracle == repro->target_oracle) {
        std::printf("replay reproduced the [%s] violation\n",
                    repro->target_oracle.c_str());
        return args.expect_violation ? 0 : 1;
      }
    }
    std::fprintf(stderr,
                 "eden_check: replay did NOT reproduce the recorded [%s] "
                 "violation\n",
                 repro->target_oracle.c_str());
    return 3;
  }
  if (args.expect_violation) return report.ok() ? 3 : 0;
  return report.ok() ? 0 : 1;
}

// End-to-end liveness proof for the whole pipeline: seed a protocol bug
// (frozen seqNum), catch it, shrink it small, persist + replay it, and
// verify bitwise determinism across thread counts.
int run_selftest(const Args& args) {
  check::ScenarioSpec spec;
  spec.seed = 20260805;
  spec.horizon_sec = 26.0;
  spec.cooldown_sec = 10.0;
  spec.heartbeat_ttl_sec = 3.0;
  spec.user_idle_ttl_sec = 12.0;
  spec.chaos = check::kChaosFreezeSeqNum;
  for (int i = 0; i < 2; ++i) {
    check::FuzzNode node;
    node.lat += 0.02 * i;
    node.base_frame_ms = 20.0 + 5.0 * i;
    spec.nodes.push_back(node);
  }
  for (int i = 0; i < 2; ++i) {
    check::FuzzClient client;
    client.lon += 0.03 * i;
    client.probing_period_sec = 2.5 + i;
    client.start_sec = static_cast<double>(i);
    spec.clients.push_back(client);
  }

  const check::RunReport seeded = check::run_spec(spec);
  bool caught = false;
  for (const auto& v : seeded.violations) caught |= v.oracle == "seqnum";
  if (!caught) {
    std::fprintf(stderr,
                 "selftest: the seeded frozen-seqNum bug was NOT caught\n");
    print_violations(spec.seed, seeded);
    return 1;
  }
  std::printf("selftest: seeded seqNum freeze caught (%zu violations)\n",
              seeded.violations.size());

  const check::ShrinkResult shrunk = check::shrink(spec, "seqnum");
  if (!shrunk.accepted || shrunk.spec.nodes.size() > 3 ||
      shrunk.spec.clients.size() > 2) {
    std::fprintf(stderr,
                 "selftest: shrink failed (accepted=%d, %zu nodes, %zu "
                 "clients)\n",
                 shrunk.accepted ? 1 : 0, shrunk.spec.nodes.size(),
                 shrunk.spec.clients.size());
    return 3;
  }
  std::printf("selftest: shrunk to %zu node(s), %zu client(s) in %d runs\n",
              shrunk.spec.nodes.size(), shrunk.spec.clients.size(),
              shrunk.attempts);

  check::ReproFile repro;
  repro.target_oracle = "seqnum";
  repro.spec = shrunk.spec;
  if (!check::write_repro(args.out_path, repro)) {
    std::fprintf(stderr, "selftest: cannot write %s\n", args.out_path.c_str());
    return 2;
  }
  const auto loaded = check::load_repro(args.out_path);
  if (!loaded || !(*loaded == repro)) {
    std::fprintf(stderr, "selftest: %s did not round-trip\n",
                 args.out_path.c_str());
    return 3;
  }

  // Bitwise determinism across thread counts: the same spec replayed on a
  // 1-thread and an 8-thread pool must produce identical trace digests.
  const unsigned wide = args.jobs == 0 ? 8 : std::max(args.jobs, 2u);
  std::uint64_t digests[2] = {0, 0};
  const unsigned counts[2] = {1, wide};
  for (int round = 0; round < 2; ++round) {
    const harness::ParallelRunner runner(counts[round]);
    std::vector<std::function<std::uint64_t()>> jobs;
    for (unsigned i = 0; i < counts[round]; ++i) {
      jobs.emplace_back(
          [&loaded] { return check::run_spec(loaded->spec).trace_digest; });
    }
    const auto results = runner.map(std::move(jobs));
    digests[round] = results[0];
    for (const std::uint64_t d : results) {
      if (d != results[0]) {
        std::fprintf(stderr,
                     "selftest: digests diverged within one pool run\n");
        return 3;
      }
    }
  }
  if (digests[0] != digests[1]) {
    std::fprintf(stderr,
                 "selftest: digest differs across thread counts (%016llx vs "
                 "%016llx)\n",
                 static_cast<unsigned long long>(digests[0]),
                 static_cast<unsigned long long>(digests[1]));
    return 3;
  }
  std::printf(
      "selftest: repro %s replays byte-identically on 1 and %u threads "
      "(digest %016llx)\n",
      args.out_path.c_str(), wide,
      static_cast<unsigned long long>(digests[0]));
  return 0;
}

// Failover-pipeline liveness proof: plant the drop-last-batch replay bug
// (kChaosDropLastBatchOnReplay) in a crash scenario and demand the
// journal-seqnum oracle (and the replay-determinism witness) catch it;
// then run the identical scenario without the chaos bit and demand a clean
// bill — proving the oracle keys on the planted bug, not on failover
// noise. Finishes with a v4 repro round-trip of the crash spec.
int run_crash_selftest(const Args& args) {
  check::ScenarioSpec spec;
  spec.seed = 20260808;
  spec.horizon_sec = 28.0;
  spec.cooldown_sec = 10.0;
  spec.heartbeat_ttl_sec = 3.0;
  spec.user_idle_ttl_sec = 12.0;
  spec.standby = true;
  spec.crash.enabled = true;
  spec.crash.point = 1;  // kBeforeAck: durable commit, ack lost
  spec.crash.at_sec = 8.0;
  spec.crash.takeover_delay_sec = 0.5;
  for (int i = 0; i < 2; ++i) {
    check::FuzzNode node;
    node.lat += 0.02 * i;
    node.base_frame_ms = 20.0 + 5.0 * i;
    node.heartbeat_period_sec = 0.8;
    spec.nodes.push_back(node);
  }
  for (int i = 0; i < 2; ++i) {
    check::FuzzClient client;
    client.lon += 0.03 * i;
    client.probing_period_sec = 2.5 + i;
    client.start_sec = static_cast<double>(i);
    spec.clients.push_back(client);
  }

  check::ScenarioSpec buggy = spec;
  buggy.chaos = check::kChaosDropLastBatchOnReplay;
  const check::RunReport seeded = check::run_spec(buggy);
  bool caught_lsn = false;
  bool caught_dump = false;
  for (const auto& v : seeded.violations) {
    caught_lsn |= v.oracle == "journal-seqnum";
    caught_dump |= v.oracle == "journal-replay";
  }
  if (!caught_lsn || !caught_dump) {
    std::fprintf(stderr,
                 "selftest: planted drop-last-batch replay bug was NOT fully "
                 "caught (journal-seqnum=%d journal-replay=%d)\n",
                 caught_lsn ? 1 : 0, caught_dump ? 1 : 0);
    print_violations(buggy.seed, seeded);
    return 1;
  }
  std::printf(
      "selftest: planted drop-last-batch bug caught by journal-seqnum + "
      "journal-replay (%zu violations)\n",
      seeded.violations.size());

  const check::RunReport clean = check::run_spec(spec);
  if (!clean.ok()) {
    std::fprintf(stderr,
                 "selftest: the same crash scenario WITHOUT the planted bug "
                 "violated an oracle — the failover path itself is broken\n");
    print_violations(spec.seed, clean);
    return 1;
  }
  std::printf(
      "selftest: same crash scenario without the bug runs clean "
      "(takeover verified, digest %016llx)\n",
      static_cast<unsigned long long>(clean.trace_digest));

  // v4 repro round-trip: the failover fields survive persist + parse, and
  // the reloaded spec replays bit-identically.
  check::ReproFile repro;
  repro.spec = spec;
  const std::string path = args.out_path + ".crash";
  if (!check::write_repro(path, repro)) {
    std::fprintf(stderr, "selftest: cannot write %s\n", path.c_str());
    return 2;
  }
  const auto loaded = check::load_repro(path);
  if (!loaded || !(*loaded == repro)) {
    std::fprintf(stderr, "selftest: %s did not round-trip\n", path.c_str());
    return 3;
  }
  const check::RunReport replayed = check::run_spec(loaded->spec);
  if (replayed.trace_digest != clean.trace_digest) {
    std::fprintf(stderr,
                 "selftest: crash repro replay diverged (%016llx vs "
                 "%016llx)\n",
                 static_cast<unsigned long long>(replayed.trace_digest),
                 static_cast<unsigned long long>(clean.trace_digest));
    return 3;
  }
  std::printf("selftest: crash repro %s replays bit-identically\n",
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.crash && args.witness) {
    std::fprintf(stderr,
                 "eden_check: --crash specs re-route mid-run and are not "
                 "supported by the sharded witness\n");
    return 2;
  }
  if (args.crash && args.overload) {
    std::fprintf(stderr,
                 "eden_check: --crash and --overload are separate sweep "
                 "modes; run them in turn\n");
    return 2;
  }
  if (args.selftest) {
    const int code = run_selftest(args);
    if (code != 0) return code;
    return run_crash_selftest(args);
  }
  if (args.witness) return run_witness(args);
  if (!args.replay_path.empty()) return run_replay(args);
  if (args.single) return run_single(args);
  if (args.seeds > 0) return run_sweep(args);
  usage();
  return 2;
}
