// eden_client: standalone application-client daemon running the paper's
// client-centric selection loop against a live manager + nodes, streaming
// emulated AR frames and reporting latency.
//
//   eden_client --manager 127.0.0.1:7000 [--top-n 3] [--fps 20]
#include <csignal>
#include <cstdio>

#include "rpc/live_runtime.h"
#include "tools/flags.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  eden::tools::Flags flags(
      argc, argv,
      "usage: eden_client --manager HOST:PORT [--top-n N] [--fps X]\n"
      "                   [--geohash H] [--isp TAG] [--probing-period-s X]\n"
      "                   [--policy lo|go] [--qos-ms X] [--status-period-s N]");
  const std::string manager_endpoint = flags.str("manager", "127.0.0.1:7000");
  const int status_period = flags.integer("status-period-s", 5);

  eden::client::ClientConfig config;
  config.top_n = flags.integer("top-n", 3);
  config.geohash = flags.str("geohash", "9zvxvf");
  config.network_tag = flags.str("isp", "");
  config.probing_period = eden::sec(flags.real("probing-period-s", 5.0));
  config.app.max_fps = flags.real("fps", 20.0);
  config.policy = flags.str("policy", "go") == "lo"
                      ? eden::client::LocalPolicy::kLocalOverhead
                      : eden::client::LocalPolicy::kGlobalOverhead;
  const double qos_ms = flags.real("qos-ms", 0.0);
  if (qos_ms > 0) {
    config.qos.max_lo_ms = qos_ms;
    config.qos.strict = true;
  }
  flags.check_unused();

  eden::rpc::LiveClient client(config, manager_endpoint);
  client.start();
  std::printf("eden_client streaming via manager %s (TopN=%d, up to %.0f FPS)\n",
              manager_endpoint.c_str(), config.top_n, config.app.max_fps);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::uint64_t last_frames = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::seconds(status_period));
    const auto stats = client.stats();
    const auto current = client.current_node();
    const auto latency = client.latency_window_ms();
    const auto pool = client.pool_stats();
    std::printf(
        "[status] node=%s frames=%llu (+%llu) avg=%.1f ms switches=%llu "
        "failovers=%llu conns=%zu pool=%zu/%zu\n",
        current ? std::to_string(current->value).c_str() : "-",
        static_cast<unsigned long long>(stats.frames_ok),
        static_cast<unsigned long long>(stats.frames_ok - last_frames),
        latency.mean(), static_cast<unsigned long long>(stats.switches),
        static_cast<unsigned long long>(stats.failovers),
        pool.open_connections, pool.chunks_in_use, pool.chunk_capacity);
    last_frames = stats.frames_ok;
  }
  std::puts("detaching");
  client.stop();
  return 0;
}
