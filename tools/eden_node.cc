// eden_node: standalone volunteer edge-node daemon. Registers with the
// central manager, serves the Table I probing APIs and processes offloaded
// frames (emulated compute: the executor models the machine described by
// the flags).
//
//   eden_node --manager 127.0.0.1:7000 --id 1 --cores 4 --frame-ms 30
#include <csignal>
#include <cstdio>

#include "rpc/live_runtime.h"
#include "tools/flags.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  eden::tools::Flags flags(
      argc, argv,
      "usage: eden_node --manager HOST:PORT --id N [--port N] [--cores N]\n"
      "                 [--frame-ms X] [--geohash H] [--isp TAG]\n"
      "                 [--dedicated] [--burstable] [--background-load X]\n"
      "                 [--status-period-s N]");
  const std::string manager_endpoint = flags.str("manager", "127.0.0.1:7000");
  const int id = flags.integer("id", 1);
  const int port = flags.integer("port", 0);
  const int status_period = flags.integer("status-period-s", 10);

  eden::node::EdgeNodeConfig config;
  config.id = eden::NodeId{static_cast<std::uint32_t>(id)};
  config.geohash = flags.str("geohash", "9zvxvf");
  config.network_tag = flags.str("isp", "");
  config.dedicated = flags.boolean("dedicated", false);
  config.executor.cores = flags.integer("cores", 2);
  config.executor.base_frame_ms = flags.real("frame-ms", 30.0);
  config.executor.burstable = flags.boolean("burstable", false);
  config.executor.background_load = flags.real("background-load", 0.0);
  flags.check_unused();

  eden::rpc::LiveNode node(config, manager_endpoint);
  if (!node.start(static_cast<std::uint16_t>(port))) {
    std::fprintf(stderr, "failed to bind port %d\n", port);
    return 1;
  }
  std::printf(
      "eden_node %d serving on %s (manager %s, %d cores, %.0f ms/frame)\n", id,
      node.endpoint().c_str(), manager_endpoint.c_str(), config.executor.cores,
      config.executor.base_frame_ms);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::seconds(status_period));
    const auto stats = node.stats();
    const auto snapshot = eden::rpc::run_on_loop(node.loop(), [&] {
      return node.node_unsafe().status();
    });
    const auto pool = node.pool_stats();
    std::printf(
        "[status] users=%d util=%.0f%% frames=%llu tests=%llu joins=%llu/%llu "
        "conns=%zu pool=%zu/%zu\n",
        snapshot.attached_users, snapshot.utilization * 100.0,
        static_cast<unsigned long long>(stats.frames_processed),
        static_cast<unsigned long long>(stats.test_invocations),
        static_cast<unsigned long long>(stats.joins_accepted),
        static_cast<unsigned long long>(stats.joins_rejected),
        pool.open_connections, pool.chunks_in_use, pool.chunk_capacity);
  }
  std::puts("leaving the system (graceful deregister)");
  node.stop(/*graceful=*/true);
  return 0;
}
