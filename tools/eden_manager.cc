// eden_manager: standalone central-manager daemon. Volunteers register and
// heartbeat to it; clients send edge-discovery queries.
//
//   eden_manager --port 7000 [--heartbeat-ttl-ms 3000]
//                [--journal PATH [--no-fsync]]
//
// --journal makes registry state durable: every mutation is appended to
// the log file before the handler acks, and a restart pointed at the same
// file replays it (truncating a torn tail) and re-admits every node with a
// fresh lease — the warm-standby story of DESIGN.md §15.
#include <csignal>
#include <cstdio>

#include "rpc/live_runtime.h"
#include "tools/flags.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  eden::tools::Flags flags(argc, argv,
                           "usage: eden_manager [--port N] "
                           "[--heartbeat-ttl-ms N] [--status-period-s N] "
                           "[--journal PATH [--no-fsync]]");
  const int port = flags.integer("port", 7000);
  const double ttl_ms = flags.real("heartbeat-ttl-ms", 3000.0);
  const int status_period = flags.integer("status-period-s", 10);
  const std::string journal_path = flags.str("journal", "");
  const bool no_fsync = flags.boolean("no-fsync", false);
  flags.check_unused();

  eden::rpc::LiveManager manager({}, eden::msec(ttl_ms));
  if (!journal_path.empty()) {
    if (!manager.attach_journal(journal_path, !no_fsync)) {
      std::fprintf(stderr, "failed to open/recover journal %s\n",
                   journal_path.c_str());
      return 1;
    }
    std::printf("journal %s attached (recovered LSN %llu)\n",
                journal_path.c_str(),
                static_cast<unsigned long long>(
                    manager.journal_recovered_lsn()));
  }
  if (!manager.start(static_cast<std::uint16_t>(port))) {
    std::fprintf(stderr, "failed to bind port %d\n", port);
    return 1;
  }
  std::printf("eden_manager listening on %s (heartbeat TTL %.0f ms)\n",
              manager.endpoint().c_str(), ttl_ms);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::seconds(status_period));
    const auto live = eden::rpc::run_on_loop(manager.loop(), [&] {
      return manager.manager_unsafe().live_nodes();
    });
    const auto stats = eden::rpc::run_on_loop(manager.loop(), [&] {
      return manager.manager_unsafe().stats();
    });
    const auto pool = manager.pool_stats();
    std::printf(
        "[status] live nodes=%zu discoveries=%llu heartbeats=%llu "
        "conns=%zu pool=%zu/%zu\n",
        live, static_cast<unsigned long long>(stats.discovery_queries),
        static_cast<unsigned long long>(stats.heartbeats),
        pool.open_connections, pool.chunks_in_use, pool.chunk_capacity);
  }
  std::puts("shutting down");
  manager.stop();
  return 0;
}
