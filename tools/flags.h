// Minimal command-line flag parsing shared by the eden_* daemons.
// Supports --key value and --key=value; unknown flags abort with usage.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace eden::tools {

class Flags {
 public:
  Flags(int argc, char** argv, std::string usage)
      : program_(argv[0]), usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        fail("unexpected positional argument: " + arg);
      }
      arg = arg.substr(2);
      if (arg == "help") {
        std::printf("%s\n", usage_.c_str());
        std::exit(0);
      }
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // bare boolean flag
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback) {
    used_.push_back(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] int integer(const std::string& key, int fallback) {
    const auto text = str(key, std::to_string(fallback));
    return std::atoi(text.c_str());
  }

  [[nodiscard]] double real(const std::string& key, double fallback) {
    const auto text = str(key, std::to_string(fallback));
    return std::atof(text.c_str());
  }

  [[nodiscard]] bool boolean(const std::string& key, bool fallback) {
    const auto text = str(key, fallback ? "true" : "false");
    return text == "true" || text == "1" || text == "yes";
  }

  // Call after all lookups: aborts on flags nobody consumed (typo guard).
  void check_unused() {
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const auto& used : used_) found |= used == key;
      if (!found) fail("unknown flag: --" + key);
    }
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    std::fprintf(stderr, "%s: %s\n%s\n", program_.c_str(), message.c_str(),
                 usage_.c_str());
    std::exit(2);
  }

  std::string program_;
  std::string usage_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> used_;
};

}  // namespace eden::tools
